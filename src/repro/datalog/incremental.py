"""Incremental view maintenance: counting + Delete-and-Rederive over the kernels.

The service layer used to treat every write as a cache apocalypse: any
insertion bumped the write epoch and all materialized answers were recomputed
from scratch.  But semi-naive evaluation *is* a delta-propagation algorithm —
the per-iteration delta rules the engines already run only need to be seeded
differently to propagate an external change instead of an internal round.
This module closes the loop with the classic Gupta–Mumick–Subrahmanian
formulation of incremental view maintenance (IVM):

* a :class:`MaterializedView` owns a fully evaluated model of a program over
  a database, plus **support counts** for every fact of a non-recursive
  stratum (the exact number of rule derivations, so a deletion can decrement
  instead of recompute);
* ``apply(insertions, deletions)`` maintains the model under a batch of EDB
  changes.  Insertions drive the semi-naive delta rules forward, reusing the
  compiled :class:`~repro.datalog.engine.executor.RuleKernel` delta variants
  (the maintenance plan is compiled with ``all_deltas=True`` so *every* body
  position has one — external deltas arrive through EDB atoms too, not just
  recursive ones).  Deletions use **counting** for non-recursive strata
  (decrement lost derivations, remove facts whose count reaches zero) and
  **DRed** (overdelete everything possibly affected, then rederive what has
  an alternative proof) for recursive strata, where counting is unsound.

The correctness contract — and the metamorphic oracle the differential fuzz
harness checks — is that after any interleaving of ``apply`` calls the view's
model equals a from-scratch evaluation over the current base facts, for every
registered engine.

Change semantics: deletions retract *base* (externally asserted) facts only;
derived facts and program-level fact rules (including the ``__param_*`` seeds
a prepared query plants) are not retractable — retracting a fact that has no
base assertion is a no-op, even if the fact is present because rules derive
it.  Within one batch, deletions are processed before insertions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.datalog.atoms import Atom, NegatedAtom
from repro.datalog.columnar.relation import arity_of_key, pack_codes, unpack_key
from repro.datalog.database import Database, OverlayDatabase, _group_facts
from repro.datalog.engine.base import (
    fire_rule,
    fire_rule_delta,
    match_body,
    select_answers,
    split_rules,
)
from repro.datalog.engine.planner import (
    ProgramPlan,
    Stratum,
    compile_program_plan,
    order_body,
)
from repro.datalog.engine.stats import EvaluationStatistics
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Aggregate
from repro.datalog.unify import match_atom
from repro.errors import EvaluationError

_EMPTY_SET: FrozenSet[Tuple] = frozenset()


# ----------------------------------------------------------------------
# Mixed-state join sources
#
# Counting maintenance enumerates each changed rule firing exactly once via
# the standard delta decomposition: for the delta at body position i, the
# positions before i read one database state and the positions after i read
# the other.  These tiny adapters expose the Database probe interface
# (`relation` / `probe`) over a synthesized state so `candidate_tuples` can
# drive them unchanged.
# ----------------------------------------------------------------------
class _SetSource:
    """A single predicate's delta set, viewed as a probe-able database."""

    __slots__ = ("_predicate", "_tuples")

    def __init__(self, predicate: str, tuples: Set[Tuple]):
        self._predicate = predicate
        self._tuples = tuples

    def relation(self, predicate: str):
        return self._tuples if predicate == self._predicate else _EMPTY_SET

    def probe(self, predicate: str, position: int, value) -> Sequence[Tuple]:
        if predicate != self._predicate:
            return ()
        return [
            values
            for values in self._tuples
            if position < len(values) and values[position] == value
        ]

    def contains(self, predicate: str, values: Tuple) -> bool:
        return predicate == self._predicate and values in self._tuples


class _UnionSource:
    """The *pre-deletion* state: the live model plus the removed tuples."""

    __slots__ = ("_model", "_extra")

    def __init__(self, model: Database, extra: Mapping[str, Set[Tuple]]):
        self._model = model
        self._extra = extra

    def relation(self, predicate: str):
        extra = self._extra.get(predicate)
        if not extra:
            return self._model.relation(predicate)
        return self._model.relation(predicate) | extra

    def probe(self, predicate: str, position: int, value) -> Sequence[Tuple]:
        base = self._model.probe(predicate, position, value)
        extra = self._extra.get(predicate)
        if not extra:
            return base
        matches = [
            values
            for values in extra
            if position < len(values) and values[position] == value
        ]
        if not matches:
            return base
        return list(base) + matches

    def contains(self, predicate: str, values: Tuple) -> bool:
        if values in self._extra.get(predicate, _EMPTY_SET):
            return True
        return self._model.contains(predicate, values)


class _ExcludeSource:
    """The *pre-insertion* state: the live model minus the added tuples."""

    __slots__ = ("_model", "_excluded")

    def __init__(self, model: Database, excluded: Mapping[str, Set[Tuple]]):
        self._model = model
        self._excluded = excluded

    def relation(self, predicate: str):
        excluded = self._excluded.get(predicate)
        relation = self._model.relation(predicate)
        if not excluded:
            return relation
        return [values for values in relation if values not in excluded]

    def probe(self, predicate: str, position: int, value) -> Sequence[Tuple]:
        base = self._model.probe(predicate, position, value)
        excluded = self._excluded.get(predicate)
        if not excluded:
            return base
        return [values for values in base if values not in excluded]

    def contains(self, predicate: str, values: Tuple) -> bool:
        if values in self._excluded.get(predicate, _EMPTY_SET):
            return False
        return self._model.contains(predicate, values)


class _PriorSource:
    """The *pre-batch* state: the live model minus added plus removed tuples.

    The unified signed pass (programs with negation) mutates the model as it
    sweeps the strata in order, tracking net changes in *added*/*removed*;
    this adapter synthesizes the state every predicate had before the batch.
    A fact recorded in both dicts was present before and after (removed then
    restored); membership therefore checks *removed* first.
    """

    __slots__ = ("_model", "_added", "_removed")

    def __init__(
        self,
        model: Database,
        added: Mapping[str, Set[Tuple]],
        removed: Mapping[str, Set[Tuple]],
    ):
        self._model = model
        self._added = added
        self._removed = removed

    def relation(self, predicate: str):
        relation = self._model.relation(predicate)
        added = self._added.get(predicate)
        removed = self._removed.get(predicate)
        if added:
            relation = [values for values in relation if values not in added]
        if removed:
            return list(relation) + list(removed)
        return relation

    def probe(self, predicate: str, position: int, value) -> Sequence[Tuple]:
        base = self._model.probe(predicate, position, value)
        added = self._added.get(predicate)
        if added:
            base = [values for values in base if values not in added]
        removed = self._removed.get(predicate)
        if removed:
            extra = [
                values
                for values in removed
                if position < len(values) and values[position] == value
            ]
            if extra:
                return list(base) + extra
        return base

    def contains(self, predicate: str, values: Tuple) -> bool:
        if values in self._removed.get(predicate, _EMPTY_SET):
            return True
        if values in self._added.get(predicate, _EMPTY_SET):
            return False
        return self._model.contains(predicate, values)


# ----------------------------------------------------------------------
# Maintenance bookkeeping
# ----------------------------------------------------------------------
@dataclass
class ApplyReport:
    """What one :meth:`MaterializedView.apply` call actually did."""

    base_inserted: int = 0
    base_deleted: int = 0
    derived_added: int = 0
    derived_removed: int = 0
    overdeleted: int = 0
    rederived: int = 0
    rounds: int = 0

    def __str__(self) -> str:
        return (
            f"base +{self.base_inserted}/-{self.base_deleted} "
            f"derived +{self.derived_added}/-{self.derived_removed} "
            f"overdeleted={self.overdeleted} rederived={self.rederived} "
            f"rounds={self.rounds}"
        )


@dataclass
class MaintenanceStatistics:
    """Cumulative counters across every ``apply`` on one view."""

    applies: int = 0
    base_inserted: int = 0
    base_deleted: int = 0
    derived_added: int = 0
    derived_removed: int = 0
    overdeleted: int = 0
    rederived: int = 0
    count_increments: int = 0
    count_decrements: int = 0
    rounds: int = 0

    def absorb(self, report: ApplyReport) -> None:
        self.applies += 1
        self.base_inserted += report.base_inserted
        self.base_deleted += report.base_deleted
        self.derived_added += report.derived_added
        self.derived_removed += report.derived_removed
        self.overdeleted += report.overdeleted
        self.rederived += report.rederived
        self.rounds += report.rounds

    def as_dict(self) -> Dict[str, int]:
        return {
            "applies": self.applies,
            "base_inserted": self.base_inserted,
            "base_deleted": self.base_deleted,
            "derived_added": self.derived_added,
            "derived_removed": self.derived_removed,
            "overdeleted": self.overdeleted,
            "rederived": self.rederived,
            "count_increments": self.count_increments,
            "count_decrements": self.count_decrements,
            "rounds": self.rounds,
        }


class MaterializedView:
    """A live minimum model maintained under insertions *and* deletions.

    Construction evaluates the program once (counting derivations for
    non-recursive strata along the way); afterwards :meth:`apply` keeps the
    model — and therefore :meth:`answers` — current under EDB change batches
    at a cost proportional to the change's footprint, not the model's size.

    Presence contract: a fact is in the model iff it is base-asserted
    (externally inserted / part of the initial database), asserted by a
    program fact rule, or derivable by the rules.  For every predicate of a
    non-recursive stratum the view additionally knows the exact number of
    derivations (:meth:`support`), which is what makes deletions O(delta)
    there; recursive strata fall back to DRed, which needs no counts.
    """

    def __init__(self, program, database: Database, *, compiled: bool = True, guard=None):
        inner = getattr(program, "program", None)
        if not isinstance(program, Program):
            if isinstance(inner, Program):
                program = inner
            else:
                raise TypeError(
                    f"expected a Program (or a wrapper with .program), "
                    f"got {type(program).__name__}"
                )
        program.validate()
        if program.parameters():
            raise EvaluationError(
                "cannot materialize a parameterized template; prepare the query "
                "and bind it first (PreparedQuery.materialize)"
            )
        for rule in program.rules:
            if any(isinstance(term, Aggregate) for term in rule.head.terms):
                raise EvaluationError(
                    f"cannot materialize a program with aggregate rules: "
                    f"{rule} — aggregate results are not incrementally "
                    "maintainable; re-evaluate the program instead"
                )
        self._negated = any(rule.negated_body() for rule in program.rules)
        self._program = program
        self._compiled = compiled
        # The model is an independent deep copy: maintenance retracts facts,
        # which an overlay cannot do to its base.
        if isinstance(database, OverlayDatabase):
            self._model = database.materialize()
        else:
            self._model = database.copy()
        # Externally asserted facts: the retractable support.
        self._base: Dict[str, Set[Tuple]] = {
            name: set(tuples) for name, tuples in self._model.relations().items()
        }
        self._idb = program.idb_predicates()
        # Maintenance plan: delta variants (and compiled delta kernels) for
        # *every* body position — external deltas arrive through EDB atoms.
        self._plan: ProgramPlan = compile_program_plan(
            program, self._model, all_deltas=True
        )
        if self._negated:
            for stratum in self._plan.strata:
                if stratum.recursive and any(
                    rule.negated_body() for rule in stratum.rules
                ):
                    raise EvaluationError(
                        "cannot materialize a program with negation in a "
                        f"recursive stratum ({stratum.label}): "
                        "Delete-and-Rederive is only sound for positive "
                        "recursion — evaluate such programs from scratch"
                    )
        self._rules_by_head: Dict[str, List[Rule]] = {}
        for stratum in self._plan.strata:
            for rule in stratum.rules:
                self._rules_by_head.setdefault(rule.head.predicate, []).append(rule)
        # Program-level fact rules: permanent (non-retractable) support.
        fact_rules, _ = split_rules(program)
        self._program_facts: Dict[str, Set[Tuple]] = {}
        for rule in fact_rules:
            self._program_facts.setdefault(rule.head.predicate, set()).add(
                rule.head.as_fact_tuple()
            )
        self._counting_predicates: FrozenSet[str] = frozenset(
            predicate
            for stratum in self._plan.strata
            if not stratum.recursive
            for predicate in stratum.predicates
        )
        # Predicates some stratum is responsible for.  Note this is NOT the
        # IDB set: a predicate defined only by fact rules has no proper rules,
        # so the plan owns no stratum for it and deletions must treat it like
        # an EDB relation (presence = base assertion or pinned fact rule).
        self._stratified_predicates: FrozenSet[str] = frozenset(
            predicate
            for stratum in self._plan.strata
            for predicate in stratum.predicates
        )
        # Derivation counts for counting predicates.  Over a columnar-layout
        # model the keys are packed intern-code ints (arity-seeded, so mixed
        # arities share a dict safely) instead of value tuples — the count
        # table then stores one machine int per fact and never re-hashes
        # tuple contents on the per-firing increments; keys decode back to
        # tuples only at the support()/support_counts() boundaries.
        self._intern = (
            self._model.columnar_store().table
            if self._model.layout == "columnar"
            else None
        )
        self._counts: Dict[str, Dict[object, int]] = {
            predicate: {} for predicate in self._counting_predicates
        }
        self.statistics = EvaluationStatistics()
        self.maintenance = MaintenanceStatistics()
        # (model version, answers) for the program's own goal: the service
        # serves every materialized read through answers(), so repeat reads
        # between writes must be O(1), not a select over the full relation.
        self._answers_cache: Optional[Tuple[int, FrozenSet[Tuple]]] = None
        # The guard covers only the initial build: an abort there discards
        # this half-constructed object with the caller's database untouched
        # (the model is a private copy).  Maintenance sweeps mutate the model
        # in place, so they must run to completion — interrupting one would
        # leave the view corrupt — hence the guard is disarmed after _build.
        self._guard = guard
        self._build()
        self._guard = None
        # Goal-directed join orders for the rederivation check: the head is
        # fully bound there, so the greedy planner can start from the most
        # selective probe instead of the static (head-free) order — on a deep
        # chain this turns each "is this fact still derivable?" check from an
        # O(relation) enumeration into a handful of index probes.
        estimates = {
            predicate: self._model.cardinality(predicate)
            for predicate in program.predicates()
        }
        self._check_orders: Dict[Rule, Tuple[int, ...]] = {}
        for rules in self._rules_by_head.values():
            for rule in rules:
                self._check_orders[rule] = order_body(
                    rule.body, estimates, bound=set(rule.head.variables())
                )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def program(self) -> Program:
        return self._program

    @property
    def model(self) -> Database:
        """The maintained full model (base + derived facts).  Read-only."""
        return self._model

    @property
    def counting_predicates(self) -> FrozenSet[str]:
        """IDB predicates maintained by counting (non-recursive strata)."""
        return self._counting_predicates

    def relation(self, predicate: str) -> FrozenSet[Tuple]:
        """The maintained relation for any predicate."""
        return self._model.relation(predicate)

    def idb_facts(self) -> Database:
        """The derived portion of the model, shaped like an engine result."""
        return self._model.restrict(self._idb)

    def base_facts(self) -> Database:
        """The externally asserted facts as an independent database.

        This is exactly the input a from-scratch evaluation would start
        from, which is what the differential fuzz harness feeds the engines.
        """
        return Database({name: set(tuples) for name, tuples in self._base.items() if tuples})

    def _count_key(self, values: Tuple):
        """The _counts key for one head tuple (packed int when columnar)."""
        if self._intern is None:
            return values
        intern = self._intern.intern
        return pack_codes([intern(value) for value in values])

    def _count_values(self, key) -> Tuple:
        """Decode a _counts key back to the head value tuple."""
        if self._intern is None:
            return key
        value = self._intern.value
        return tuple(value(code) for code in unpack_key(key, arity_of_key(key)))

    def support(self, predicate: str, values: Tuple) -> int:
        """How many supports a fact currently has.

        For counting predicates: the exact derivation count (a program fact
        rule counts as one derivation, and is already inside
        :meth:`support_counts`), plus one for a base assertion.  For
        recursive-stratum predicates no derivation counts are kept (DRed
        does not need them), so the result is the assertion supports plus
        one when the fact is present (derivable).  Zero always means "not
        in the model".
        """
        values = tuple(values)
        based = int(values in self._base.get(predicate, _EMPTY_SET))
        if predicate in self._counting_predicates:
            return self._counts[predicate].get(self._count_key(values), 0) + based
        asserted = based + int(
            values in self._program_facts.get(predicate, _EMPTY_SET)
        )
        if asserted:
            return asserted
        return int(self._model.contains(predicate, values))

    def support_counts(self, predicate: str) -> Dict[Tuple, int]:
        """The exact derivation counts of one counting predicate (a copy)."""
        if predicate not in self._counting_predicates:
            raise EvaluationError(
                f"{predicate!r} is not maintained by counting (recursive strata "
                "use Delete-and-Rederive and keep no derivation counts)"
            )
        return {
            self._count_values(key): count
            for key, count in self._counts[predicate].items()
        }

    def answers(self, goal: Optional[Atom] = None) -> FrozenSet[Tuple]:
        """The goal's answers over the maintained model (always current).

        Answers for the program's own goal are memoized per model version,
        so repeat reads between writes cost a cache probe instead of a
        selection over the full relation.
        """
        own_goal = goal is None or goal == self._program.goal
        goal = goal if goal is not None else self._program.goal
        if goal is None:
            raise EvaluationError("no goal supplied and the program has none")
        version = self._model.version
        if own_goal:
            cached = self._answers_cache
            if cached is not None and cached[0] == version:
                return cached[1]
        result = select_answers(goal, self._model.relation(goal.predicate))
        if own_goal:
            self._answers_cache = (version, result)
        return result

    def describe(self) -> str:
        """Human-readable account: per-stratum maintenance strategy and sizes."""
        lines = [
            f"materialized view: {len(self._plan.strata)} strata, "
            f"{self._model.fact_count()} facts"
        ]
        for stratum in self._plan.strata:
            strategy = "DRed" if stratum.recursive else "counting"
            size = sum(self._model.cardinality(p) for p in stratum.predicates)
            lines.append(
                f"stratum {stratum.index + 1}: {stratum.label} "
                f"[{strategy}, {size} facts]"
            )
        lines.append(f"maintenance: {self.maintenance.as_dict()}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Initial evaluation (counts derivations for counting strata)
    # ------------------------------------------------------------------
    def _build(self) -> None:
        model = self._model
        for predicate, tuples in self._program_facts.items():
            if predicate in self._counting_predicates:
                counts = self._counts[predicate]
                for values in tuples:
                    key = self._count_key(values)
                    counts[key] = counts.get(key, 0) + 1
            model.add_relations({predicate: set(tuples)})
        for stratum in self._plan.strata:
            self.statistics.record_stratum()
            if stratum.recursive:
                self._run_recursive_fixpoint(stratum)
            else:
                self._run_counting_pass(stratum)

    def _run_counting_pass(self, stratum: Stratum) -> None:
        """One full pass over a non-recursive stratum, counting every firing."""
        model = self._model
        self.statistics.record_iteration(stratum.label)
        if self._guard is not None:
            self._guard.checkpoint(self.statistics)
        buckets: Dict[str, Set[Tuple]] = {}
        for rule in stratum.rules:
            if self._guard is not None:
                self._guard.checkpoint(self.statistics)
            predicate = rule.head.predicate
            counts = self._counts[predicate]
            present = model.relation_view(predicate)
            bucket = buckets.setdefault(predicate, set())
            firings = 0
            fresh = 0
            kernel = self._plan.kernel(rule) if self._compiled else None
            if kernel is not None:
                emitted: List[Tuple] = []
                kernel.execute_static(model, emitted.append)
                heads: Iterable[Tuple] = emitted
            else:
                join_plan = self._plan.join_plan(rule)
                heads = (
                    join_plan.head_values(substitution)
                    for substitution in match_body(rule.body, model, order=join_plan.order)
                )
            count_key = self._count_key
            for values in heads:
                firings += 1
                key = count_key(values)
                counts[key] = counts.get(key, 0) + 1
                if values not in present and values not in bucket:
                    bucket.add(values)
                    fresh += 1
            self.statistics.record_batch(predicate, firings, fresh)
        model.add_relations(buckets)

    def _run_recursive_fixpoint(self, stratum: Stratum) -> None:
        """Standard semi-naive fixpoint for one recursive stratum."""
        model = self._model
        self.statistics.record_iteration(stratum.label)
        if self._guard is not None:
            self._guard.checkpoint(self.statistics)
        delta_sets: Dict[str, Set[Tuple]] = {}
        for rule in stratum.rules:
            bucket = delta_sets.setdefault(rule.head.predicate, set())
            fire_rule(self._plan, rule, model, bucket, self.statistics, self._compiled)
        delta = {name: bucket for name, bucket in delta_sets.items() if bucket}
        if delta:
            model.add_relations({name: set(bucket) for name, bucket in delta.items()})
        self._delta_fixpoint(stratum, delta, label=stratum.label)

    def _delta_fixpoint(
        self,
        stratum: Stratum,
        delta: Dict[str, Set[Tuple]],
        report: Optional[ApplyReport] = None,
        on_new=None,
        label: Optional[str] = None,
    ) -> None:
        """Semi-naive delta rounds until quiescence, for one stratum.

        The one fixpoint loop behind the initial build, insertion
        propagation, and DRed rederivation — they differ only in how the
        first *delta* is seeded and in the per-round bookkeeping:
        ``report`` counts maintenance rounds, ``on_new(predicate, bucket)``
        observes each round's fresh facts (already added to the model), and
        ``label`` attributes engine iterations to a stratum.
        """
        model = self._model
        plan = self._plan
        while any(delta.values()):
            if report is not None:
                report.rounds += 1
            if label is not None:
                self.statistics.record_iteration(label)
            if self._guard is not None:
                self._guard.checkpoint(self.statistics)
            delta_database = Database.adopt(
                {name: set(bucket) for name, bucket in delta.items() if bucket}
            )
            delta_predicates = delta_database.predicates()
            next_sets: Dict[str, Set[Tuple]] = {}
            for rule in stratum.rules:
                bucket = next_sets.setdefault(rule.head.predicate, set())
                fire_rule_delta(
                    plan,
                    rule,
                    model,
                    delta_database,
                    delta_predicates,
                    bucket,
                    self.statistics,
                    self._compiled,
                )
            delta = {name: bucket for name, bucket in next_sets.items() if bucket}
            if delta:
                model.add_relations(
                    {name: set(bucket) for name, bucket in delta.items()}
                )
                if on_new is not None:
                    for predicate, bucket in delta.items():
                        on_new(predicate, bucket)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def apply(
        self, insertions: Iterable = (), deletions: Iterable = ()
    ) -> ApplyReport:
        """Maintain the view under a batch of EDB changes.

        *insertions* and *deletions* may mix ground
        :class:`~repro.datalog.atoms.Atom` objects and ``(predicate,
        values)`` pairs.  Deletions are processed first (a fact both deleted
        and inserted in one batch ends up present).  Returns an
        :class:`ApplyReport`; cumulative counters live on
        :attr:`maintenance`.
        """
        report = ApplyReport()
        if self._negated:
            # Negation couples the polarities — deleting q(a) can *gain*
            # firings of rules with ``not q(..)`` — so the two-phase positive
            # path below is replaced by one signed stratum-ordered sweep.
            self._apply_signed(
                _group_facts(insertions), _group_facts(deletions), report
            )
        else:
            removed = self._apply_deletions(_group_facts(deletions), report)
            if removed:
                self._propagate_deletions(removed, report)
            added = self._apply_insertions(_group_facts(insertions), report)
            if added:
                self._propagate_insertions(added, report)
        self.maintenance.absorb(report)
        return report

    # -- signed maintenance (programs with negated literals) ------------
    def _apply_signed(
        self,
        insert_groups: Dict[str, Set[Tuple]],
        delete_groups: Dict[str, Set[Tuple]],
        report: ApplyReport,
    ) -> None:
        """One stratum-ordered sweep carrying both polarities of net change.

        Base bookkeeping first (deletions before insertions, so a fact both
        deleted and inserted ends up present), then each stratum settles
        against the accumulated net ``added``/``removed`` model changes:
        counting strata take a telescoped signed tally
        (:meth:`_signed_counting`); recursive strata — positive-only, the
        constructor rejects recursive negation — run DRed for the removals
        and the semi-naive delta fixpoint for the additions.
        """
        model = self._model
        net_removed: Dict[str, Set[Tuple]] = {}
        net_added: Dict[str, Set[Tuple]] = {}
        for predicate, tuples in delete_groups.items():
            base = self._base.get(predicate)
            if not base:
                continue
            actually = tuples & base
            if not actually:
                continue
            base -= actually
            report.base_deleted += len(actually)
            net_removed[predicate] = set(actually)
        for predicate, tuples in insert_groups.items():
            base = self._base.setdefault(predicate, set())
            fresh = tuples - base
            if not fresh:
                continue
            base.update(fresh)
            report.base_inserted += len(fresh)
            lost = net_removed.get(predicate)
            if lost:
                # Deleted and re-inserted in one batch: no net change.
                reasserted = fresh & lost
                if reasserted:
                    lost -= reasserted
                    fresh = fresh - reasserted
                    if not lost:
                        net_removed.pop(predicate, None)
            if fresh:
                net_added[predicate] = set(fresh)

        # Net *model* changes, accumulated stratum by stratum.  Base
        # insertions enter the model immediately (presence by assertion);
        # base retractions of stratum-owned predicates are deferred to their
        # stratum (the fact may remain derivable), everything else leaves now.
        added: Dict[str, Set[Tuple]] = {}
        removed: Dict[str, Set[Tuple]] = {}
        own_retractions: Dict[str, Set[Tuple]] = {}
        for predicate, tuples in net_added.items():
            entering = {
                values for values in tuples if not model.contains(predicate, values)
            }
            if entering:
                model.add_relations({predicate: set(entering)})
                added[predicate] = entering
        base_entered = sum(len(tuples) for tuples in added.values())
        for predicate, tuples in net_removed.items():
            if predicate in self._stratified_predicates:
                own_retractions[predicate] = set(tuples)
                continue
            pinned = self._program_facts.get(predicate, _EMPTY_SET)
            gone = {
                values
                for values in tuples
                if values not in pinned and model.contains(predicate, values)
            }
            if gone:
                model.remove_facts((predicate, values) for values in gone)
                removed[predicate] = gone

        for stratum in self._plan.strata:
            body_predicates = {
                atom.predicate for rule in stratum.rules for atom in rule.body
            }
            incoming_added = {
                predicate: added[predicate]
                for predicate in body_predicates
                if added.get(predicate)
            }
            incoming_removed = {
                predicate: removed[predicate]
                for predicate in body_predicates
                if removed.get(predicate)
            }
            own = {
                predicate: own_retractions[predicate]
                for predicate in stratum.predicates
                if own_retractions.get(predicate)
            }
            if not incoming_added and not incoming_removed and not own:
                continue
            if stratum.recursive:
                # Insertions first: once the additions are propagated the
                # model is closed under the stratum's rules, so the DRed
                # rederivation fixpoint can only *restore* overdeleted facts
                # — it cannot invent new ones that would escape the change
                # record.  DRed itself is sound against the already-updated
                # model: overdeletion against a superset of the old state
                # only overshoots, and rederivation checks the live model.
                if incoming_added:
                    self._recursive_insert(stratum, incoming_added, added, report)
                if incoming_removed or own:
                    self._dred_delete(stratum, incoming_removed, own, removed, report)
            else:
                self._signed_counting(
                    stratum, incoming_added, incoming_removed, own, added, removed, report
                )
            # Keep the net change sets disjoint and exact: a fact recorded
            # on both sides within one batch (added then removed, or removed
            # then restored) is no net change at all, and leaving it in both
            # sets would poison the pre-batch state synthesized by
            # _PriorSource and the downstream signed tallies.
            for predicate in set(added) & set(removed):
                both = added[predicate] & removed[predicate]
                if both:
                    added[predicate] -= both
                    removed[predicate] -= both

        report.derived_added += (
            sum(len(tuples) for tuples in added.values()) - base_entered
        )
        report.derived_removed += sum(
            len(tuples)
            for predicate, tuples in removed.items()
            if predicate in self._stratified_predicates
        )

    def _signed_counting(
        self,
        stratum: Stratum,
        incoming_added: Dict[str, Set[Tuple]],
        incoming_removed: Dict[str, Set[Tuple]],
        own_retractions: Dict[str, Set[Tuple]],
        added: Dict[str, Set[Tuple]],
        removed: Dict[str, Set[Tuple]],
        report: ApplyReport,
    ) -> None:
        """Signed counting maintenance for one non-recursive stratum.

        The telescoped delta decomposition, with both polarities in one
        sweep: for the delta at body position ``i``, earlier positions read
        the new state (the live model), later positions read the pre-batch
        state (:class:`_PriorSource`), and position ``i`` enumerates a delta
        set with a sign.  A negated literal swaps the polarity — facts
        *removed* from its relation gain complement matches, added facts
        lose them — and is matched positively against the delta set
        (``positive_positions``).  The caller keeps the change sets disjoint
        and exact, so each tally term is the textbook signed delta.
        """
        model = self._model
        report.rounds += 1
        prior = _PriorSource(model, added, removed)
        tallies: Dict[str, Dict[Tuple, int]] = {}
        for rule in stratum.rules:
            join_plan = self._plan.join_plan(rule)
            body = rule.body
            for position, atom in enumerate(body):
                negated = isinstance(atom, NegatedAtom)
                if negated:
                    gained = incoming_removed.get(atom.predicate)
                    lost = incoming_added.get(atom.predicate)
                else:
                    gained = incoming_added.get(atom.predicate)
                    lost = incoming_removed.get(atom.predicate)
                for delta_set, sign in ((gained, 1), (lost, -1)):
                    if not delta_set:
                        continue
                    sources: List = [
                        model if other < position else prior
                        for other in range(len(body))
                    ]
                    sources[position] = _SetSource(atom.predicate, delta_set)
                    per_head = tallies.setdefault(rule.head.predicate, {})
                    for substitution in match_body(
                        body,
                        None,
                        order=self._variant_order(join_plan, position),
                        sources=sources,
                        positive_positions=frozenset((position,)),
                    ):
                        values = join_plan.head_values(substitution)
                        per_head[values] = per_head.get(values, 0) + sign
        # Settle the counters, then move facts in or out of the model.
        candidates: Dict[str, Set[Tuple]] = {
            predicate: set(tuples) for predicate, tuples in own_retractions.items()
        }
        entering: Dict[str, Set[Tuple]] = {}
        for predicate, per_head in tallies.items():
            counts = self._counts[predicate]
            bucket = candidates.setdefault(predicate, set())
            enter = entering.setdefault(predicate, set())
            for values, delta_count in per_head.items():
                if not delta_count:
                    continue
                key = self._count_key(values)
                new_count = counts.get(key, 0) + delta_count
                if delta_count > 0:
                    self.maintenance.count_increments += delta_count
                else:
                    self.maintenance.count_decrements += -delta_count
                if new_count > 0:
                    counts[key] = new_count
                    enter.add(values)
                else:
                    counts.pop(key, None)
                    bucket.add(values)
        for predicate, tuples in candidates.items():
            counts = self._counts[predicate]
            base = self._base.get(predicate, _EMPTY_SET)
            pinned = self._program_facts.get(predicate, _EMPTY_SET)
            leaving = {
                values
                for values in tuples
                if counts.get(self._count_key(values), 0) == 0
                and values not in base
                and values not in pinned
                and model.contains(predicate, values)
            }
            if leaving:
                model.remove_facts((predicate, values) for values in leaving)
                removed.setdefault(predicate, set()).update(leaving)
        for predicate, tuples in entering.items():
            fresh = {
                values for values in tuples if not model.contains(predicate, values)
            }
            if fresh:
                model.add_relations({predicate: set(fresh)})
                added.setdefault(predicate, set()).update(fresh)

    # -- deletions ------------------------------------------------------
    def _apply_deletions(
        self, groups: Dict[str, Set[Tuple]], report: ApplyReport
    ) -> Dict[str, Set[Tuple]]:
        """Retract base assertions; return the per-stratum deletion seeds.

        The returned mapping holds, per predicate, the base facts that lost
        their assertion and are *candidates* for leaving the model.  For
        plain EDB predicates the candidacy is decided immediately (presence
        equals assertion); for IDB predicates the decision belongs to the
        predicate's stratum (counting checks the derivation count, DRed
        overdeletes and rederives).
        """
        seeds: Dict[str, Set[Tuple]] = {}
        for predicate, tuples in groups.items():
            base = self._base.get(predicate)
            if not base:
                continue
            actually = tuples & base
            if not actually:
                continue
            base -= actually
            report.base_deleted += len(actually)
            seeds[predicate] = set(actually)
        return seeds

    def _propagate_deletions(
        self, seeds: Dict[str, Set[Tuple]], report: ApplyReport
    ) -> None:
        model = self._model
        removed: Dict[str, Set[Tuple]] = {}
        # Predicates no stratum owns — plain EDB relations, and predicates
        # defined only by fact rules: presence is assertion (base or pinned
        # fact rule), so unpinned retractions leave the model immediately.
        for predicate, tuples in seeds.items():
            if predicate in self._stratified_predicates:
                continue
            pinned = self._program_facts.get(predicate, _EMPTY_SET)
            gone = {values for values in tuples if values not in pinned}
            if gone:
                model.remove_facts((predicate, values) for values in gone)
                removed[predicate] = gone
        for stratum in self._plan.strata:
            body_predicates = {
                atom.predicate for rule in stratum.rules for atom in rule.body
            }
            incoming = {
                predicate: removed[predicate]
                for predicate in body_predicates
                if removed.get(predicate)
            }
            own_retractions = {
                predicate: seeds[predicate]
                for predicate in stratum.predicates
                if seeds.get(predicate)
            }
            if not incoming and not own_retractions:
                continue
            if stratum.recursive:
                self._dred_delete(stratum, incoming, own_retractions, removed, report)
            else:
                self._counting_delete(stratum, incoming, own_retractions, removed, report)
        report.derived_removed += sum(
            len(values)
            for predicate, values in removed.items()
            if predicate in self._stratified_predicates
        )

    def _counting_delete(
        self,
        stratum: Stratum,
        incoming: Dict[str, Set[Tuple]],
        own_retractions: Dict[str, Set[Tuple]],
        removed: Dict[str, Set[Tuple]],
        report: ApplyReport,
    ) -> None:
        """Counting maintenance: decrement lost derivations, drop zero-count facts.

        Lost firings are enumerated exactly once each via the delta
        decomposition: for the delta at original body position ``i``,
        positions before ``i`` read the new state (the live model, deletions
        below this stratum already applied) and positions after ``i`` read
        the old state (model plus everything removed so far).
        """
        model = self._model
        if incoming:
            report.rounds += 1
        lost = self._delta_firing_counts(stratum, incoming, _UnionSource(model, removed))
        # Settle the counters, then decide which facts actually leave.
        candidates: Dict[str, Set[Tuple]] = {
            predicate: set(tuples) for predicate, tuples in own_retractions.items()
        }
        for predicate, per_head in lost.items():
            counts = self._counts[predicate]
            bucket = candidates.setdefault(predicate, set())
            for values, count in per_head.items():
                key = self._count_key(values)
                remaining = counts.get(key, 0) - count
                self.maintenance.count_decrements += count
                if remaining > 0:
                    counts[key] = remaining
                else:
                    counts.pop(key, None)
                    bucket.add(values)
        for predicate, tuples in candidates.items():
            counts = self._counts[predicate]
            base = self._base.get(predicate, _EMPTY_SET)
            pinned = self._program_facts.get(predicate, _EMPTY_SET)
            leaving = {
                values
                for values in tuples
                if counts.get(self._count_key(values), 0) == 0
                and values not in base
                and values not in pinned
                and model.contains(predicate, values)
            }
            if leaving:
                model.remove_facts((predicate, values) for values in leaving)
                removed.setdefault(predicate, set()).update(leaving)

    def _dred_delete(
        self,
        stratum: Stratum,
        incoming: Dict[str, Set[Tuple]],
        own_retractions: Dict[str, Set[Tuple]],
        removed: Dict[str, Set[Tuple]],
        report: ApplyReport,
    ) -> None:
        """Delete-and-Rederive for one recursive stratum.

        Overdeletion finds every stratum fact with at least one derivation
        touching a deleted fact (evaluated against the *old* state, which is
        the live model plus everything removed so far — the stratum's own
        facts are still intact).  The overdeleted facts are removed, then
        rederivation restores those with an alternative proof: a goal-driven
        one-step check per overdeleted fact (the head is bound, so the body
        join is selective) seeds a semi-naive fixpoint over the reduced
        model, which reuses the compiled delta kernels unchanged.
        """
        model = self._model
        plan = self._plan
        old_state = _UnionSource(model, removed)
        over: Dict[str, Set[Tuple]] = {}
        delta: Dict[str, Set[Tuple]] = {
            predicate: set(tuples) for predicate, tuples in incoming.items()
        }
        for predicate, tuples in own_retractions.items():
            pinned = self._program_facts.get(predicate, _EMPTY_SET)
            candidates = {
                values
                for values in tuples
                if values not in pinned and model.contains(predicate, values)
            }
            if candidates:
                over.setdefault(predicate, set()).update(candidates)
                delta.setdefault(predicate, set()).update(candidates)
        while any(delta.values()):
            report.rounds += 1
            delta_database = Database.adopt(
                {predicate: set(tuples) for predicate, tuples in delta.items() if tuples}
            )
            delta_predicates = delta_database.predicates()
            next_over: Dict[str, Set[Tuple]] = {}
            for rule in stratum.rules:
                predicate = rule.head.predicate
                seen = over.setdefault(predicate, set())
                pinned_base = self._base.get(predicate, _EMPTY_SET)
                pinned_rules = self._program_facts.get(predicate, _EMPTY_SET)
                bucket = next_over.setdefault(predicate, set())

                def collect(values: Tuple) -> None:
                    # Only model facts can be overdeleted.  The guard also
                    # keeps the cascade sound in the signed path, where the
                    # model already holds this batch's insertions: a join of
                    # a new-state fact with an old-state deleted fact can
                    # produce a "phantom" head that existed in neither state,
                    # and recording it as removed would poison the signed
                    # tallies downstream.  A fact absent from the model was
                    # not in the old stratum extension either (nothing below
                    # removes stratum facts), so skipping it loses no real
                    # overdeletion candidates.
                    if (
                        values not in seen
                        and values not in bucket
                        and values not in pinned_base
                        and values not in pinned_rules
                        and model.contains(predicate, values)
                    ):
                        bucket.add(values)

                kernel = plan.kernel(rule) if self._compiled else None
                if kernel is not None:
                    for position in kernel.delta_positions:
                        if rule.body[position].predicate not in delta_predicates:
                            continue
                        kernel.execute_delta(
                            position, old_state, delta_database, collect
                        )
                else:
                    join_plan = plan.join_plan(rule)
                    for variant in join_plan.variants:
                        if rule.body[variant.position].predicate not in delta_predicates:
                            continue
                        for substitution in match_body(
                            rule.body,
                            old_state,
                            delta_position=variant.position,
                            delta_index=delta_database,
                            order=variant.order,
                        ):
                            collect(join_plan.head_values(substitution))
            for predicate, bucket in next_over.items():
                if bucket:
                    over[predicate].update(bucket)
            delta = next_over
        overdeleted_count = sum(len(tuples) for tuples in over.values())
        if not overdeleted_count:
            return
        report.overdeleted += overdeleted_count
        model.remove_facts(
            (predicate, values)
            for predicate, tuples in over.items()
            for values in tuples
        )
        # Rederivation: goal-driven one-step checks seed the delta fixpoint.
        rederived: Dict[str, Set[Tuple]] = {}
        delta = {}
        for predicate, tuples in over.items():
            for values in tuples:
                if self._derivable_one_step(predicate, values):
                    rederived.setdefault(predicate, set()).add(values)
                    delta.setdefault(predicate, set()).add(values)
        if delta:
            model.add_relations({p: set(t) for p, t in delta.items()})
        self._delta_fixpoint(
            stratum,
            delta,
            report,
            on_new=lambda predicate, bucket: rederived.setdefault(
                predicate, set()
            ).update(bucket),
        )
        rederived_count = sum(len(tuples) for tuples in rederived.values())
        report.rederived += rederived_count
        for predicate, tuples in over.items():
            net = tuples - rederived.get(predicate, set())
            if net:
                removed.setdefault(predicate, set()).update(net)

    def _delta_firing_counts(
        self,
        stratum: Stratum,
        incoming: Dict[str, Set[Tuple]],
        old_state,
    ) -> Dict[str, Dict[Tuple, int]]:
        """Per-head tallies of changed firings, each counted exactly once.

        The standard delta decomposition shared by counting insertion and
        deletion: for a delta at original body position ``i``, positions
        before ``i`` read the new state (the live model) and positions after
        ``i`` read *old_state* — so a firing touching several changed facts
        is tallied at a single position.  The direction (gained vs lost)
        lives entirely in which adapter the caller passes as *old_state*.
        """
        model = self._model
        tallies: Dict[str, Dict[Tuple, int]] = {}
        for rule in stratum.rules:
            join_plan = self._plan.join_plan(rule)
            body = rule.body
            for position, atom in enumerate(body):
                delta_set = incoming.get(atom.predicate)
                if not delta_set:
                    continue
                sources: List = [
                    model if other < position else old_state
                    for other in range(len(body))
                ]
                sources[position] = _SetSource(atom.predicate, delta_set)
                per_head = tallies.setdefault(rule.head.predicate, {})
                for substitution in match_body(
                    body,
                    None,
                    order=self._variant_order(join_plan, position),
                    sources=sources,
                ):
                    values = join_plan.head_values(substitution)
                    per_head[values] = per_head.get(values, 0) + 1
        return tallies

    def _variant_order(self, join_plan, position: int) -> Tuple[int, ...]:
        for variant in join_plan.variants:
            if variant.position == position:
                return variant.order
        return join_plan.order

    def _derivable_one_step(self, predicate: str, values: Tuple) -> bool:
        """Whether the current model proves the fact in one rule application."""
        if values in self._program_facts.get(predicate, _EMPTY_SET):
            return True
        for rule in self._rules_by_head.get(predicate, ()):
            initial = match_atom(rule.head, values)
            if initial is None:
                continue
            matches = match_body(
                rule.body, self._model, initial=initial, order=self._check_orders[rule]
            )
            if next(matches, None) is not None:
                return True
        return False

    # -- insertions -----------------------------------------------------
    def _apply_insertions(
        self, groups: Dict[str, Set[Tuple]], report: ApplyReport
    ) -> Dict[str, Set[Tuple]]:
        """Assert base facts; return the facts that actually entered the model."""
        model = self._model
        added: Dict[str, Set[Tuple]] = {}
        for predicate, tuples in groups.items():
            base = self._base.setdefault(predicate, set())
            fresh = tuples - base
            if not fresh:
                continue
            base.update(fresh)
            report.base_inserted += len(fresh)
            entering = {
                values for values in fresh if not model.contains(predicate, values)
            }
            if entering:
                model.add_relations({predicate: set(entering)})
                added[predicate] = entering
        return added

    def _propagate_insertions(
        self, added: Dict[str, Set[Tuple]], report: ApplyReport
    ) -> None:
        before = sum(len(tuples) for tuples in added.values())
        for stratum in self._plan.strata:
            body_predicates = {
                atom.predicate for rule in stratum.rules for atom in rule.body
            }
            incoming = {
                predicate: added[predicate]
                for predicate in body_predicates
                if added.get(predicate)
            }
            if not incoming:
                continue
            if stratum.recursive:
                self._recursive_insert(stratum, incoming, added, report)
            else:
                self._counting_insert(stratum, incoming, added, report)
        report.derived_added += (
            sum(len(tuples) for tuples in added.values()) - before
        )

    def _counting_insert(
        self,
        stratum: Stratum,
        incoming: Dict[str, Set[Tuple]],
        added: Dict[str, Set[Tuple]],
        report: ApplyReport,
    ) -> None:
        """Counting maintenance for insertions: increment new derivations.

        Mirror of :meth:`_counting_delete`: for the delta at body position
        ``i``, earlier positions read the new state (the live model — all
        additions so far are already in it) and later positions read the old
        state (model minus the added facts), so each gained firing is
        counted exactly once, at its last delta position.
        """
        model = self._model
        report.rounds += 1
        gained = self._delta_firing_counts(
            stratum, incoming, _ExcludeSource(model, added)
        )
        buckets: Dict[str, Set[Tuple]] = {}
        for predicate, per_head in gained.items():
            counts = self._counts[predicate]
            present = model.relation_view(predicate)
            bucket = buckets.setdefault(predicate, set())
            for values, count in per_head.items():
                key = self._count_key(values)
                counts[key] = counts.get(key, 0) + count
                self.maintenance.count_increments += count
                if values not in present and values not in bucket:
                    bucket.add(values)
        for predicate, bucket in buckets.items():
            if bucket:
                model.add_relations({predicate: set(bucket)})
                added.setdefault(predicate, set()).update(bucket)

    def _recursive_insert(
        self,
        stratum: Stratum,
        incoming: Dict[str, Set[Tuple]],
        added: Dict[str, Set[Tuple]],
        report: ApplyReport,
    ) -> None:
        """Semi-naive insertion for a recursive stratum.

        This is exactly the engines' delta fixpoint with the first delta
        seeded from the external insertions instead of an internal round —
        the compiled delta kernels run unchanged.
        """
        self._delta_fixpoint(
            stratum,
            {predicate: set(tuples) for predicate, tuples in incoming.items()},
            report,
            on_new=lambda predicate, bucket: added.setdefault(
                predicate, set()
            ).update(bucket),
        )

    def __repr__(self) -> str:
        return (
            f"MaterializedView(goal={self._program.goal}, "
            f"facts={self._model.fact_count()}, "
            f"applies={self.maintenance.applies})"
        )
