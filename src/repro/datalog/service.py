"""DatalogService: a thread-safe traffic layer over prepared queries.

The ROADMAP's north star is a system serving heavy traffic — many clients,
many distinct constants, one shared database.  This module is that front
door::

    from repro.datalog import Database, DatalogService
    from repro.datalog.transforms import MagicSets

    service = DatalogService(database)
    service.register_program(
        "ancestors",
        \"\"\"?anc($who, Y)
           anc(X, Y) :- par(X, Y).
           anc(X, Y) :- anc(X, Z), par(Z, Y).\"\"\",
        transforms=(MagicSets(),),
    )
    service.execute("ancestors", who="john")      # frozenset of answers
    service.execute_many("ancestors", [{"who": w} for w in pool])
    for row in service.cursor("ancestors", who="john"):
        ...

Contract:

* **Registration and preparation** are serialized by the service lock;
  preparation happens at most once per registered query and is amortized
  across all subsequent traffic.
* **Execution** takes one short critical section (the LRU cache lookup);
  the engine run itself is lock-free: concurrent ``execute`` calls share
  the prepared plan and the database snapshot (whose lazily built
  snapshots/indexes tolerate concurrent readers) and each run over their
  own copy-on-write overlay, so threads never contend on the fixpoint.
* **Results** are immutable ``frozenset`` values cached in a bounded LRU
  keyed by ``(query, engine, params, write epoch, database.version)`` —
  every write installs a new epoch, implicitly invalidating every cached
  answer without a scan.
* **Writes** go through :meth:`add_facts`, which never mutates the
  snapshot in-flight readers are using: it copies the current database,
  applies the batch, and atomically swaps the new snapshot in.  Requests
  already running finish against the old snapshot; the next request sees
  the new one.  Mutating the database object *directly* while requests
  are in flight is outside the contract (the version component of the
  cache key still prevents stale serving, but concurrent reads against an
  in-place mutation are not protected).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.datalog.database import Database
from repro.datalog.engine.registry import get_engine
from repro.datalog.incremental import MaterializedView
from repro.datalog.parser import parse_program
from repro.datalog.terms import Constant
from repro.datalog.prepared import AnswerCursor, PreparedQuery
from repro.datalog.program import Program
from repro.datalog.transforms.pipeline import Pipeline, Transform
from repro.errors import (
    EvaluationError,
    QueryAborted,
    QueryCancelled,
    QueryNotRegisteredError,
    ServiceDrainingError,
)

__all__ = [
    "DatalogService",
    "QueryNotRegisteredError",
    "ServiceDrainingError",
]


class DatalogService:
    """Thread-safe registry + prepared-query executor + bounded result cache."""

    def __init__(
        self,
        database: Optional[Database] = None,
        *,
        cache_size: int = 256,
        default_engine: str = "seminaive",
        write_hook: Optional[Callable[[str, List], None]] = None,
        default_timeout: Optional[float] = None,
        workers: Optional[int] = None,
    ):
        if cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        if default_timeout is not None and default_timeout < 0:
            raise ValueError("default_timeout must be non-negative")
        if workers is not None and (isinstance(workers, bool) or not isinstance(workers, int) or workers < 1):
            raise ValueError("workers must be a positive int")
        self._database = database if database is not None else Database()
        self._default_engine = default_engine
        # Wall-clock deadline applied to every execute/execute_many/
        # materialize call that does not carry its own timeout=; None means
        # unbounded (the historical behaviour).
        self._default_timeout = default_timeout
        # Engine-level parallelism applied to every execute/execute_many
        # that does not carry its own workers=; None means serial.  Results
        # are identical either way (the parallel layer's parity contract),
        # so the answer cache key does not include it.
        self._workers = workers
        self._cache_size = cache_size
        self._lock = threading.RLock()
        # Called as hook(kind, batch) under the service lock *before* a
        # write batch is applied — the durability layer's write-ahead
        # point.  A hook exception aborts the write (nothing is applied,
        # nothing swapped), so "logged" strictly precedes "visible".
        self._write_hook = write_hook
        # While draining (graceful shutdown), writes are refused so the
        # durability layer can reach a quiescent point; reads keep working.
        self._draining = False
        # name -> (template program, pipeline, default engine name)
        self._programs: Dict[str, Tuple[Program, Pipeline, str]] = {}
        # name -> (PreparedQuery, epoch it was compiled under); the tuple is
        # read atomically without the lock on the hot path, so a stale entry
        # observed during a write swap still carries its own (old) epoch and
        # can never poison the cache for the new snapshot.
        self._prepared: Dict[str, Tuple[PreparedQuery, int]] = {}
        # bumped whenever add_facts installs a new database snapshot; part of
        # every cache key, so a swap invalidates all cached answers at once
        self._epoch = 0
        # (name, engine, params, epoch, db version) -> answers, LRU order
        self._cache: "OrderedDict[Tuple, FrozenSet[Tuple]]" = OrderedDict()
        # (name, normalized params) -> live MaterializedView; maintained
        # in-place by add_facts/remove_facts instead of being invalidated,
        # and consulted by execute() before the LRU cache.
        self._views: Dict[Tuple[str, FrozenSet], MaterializedView] = {}
        self._cache_hits = 0
        self._cache_misses = 0
        self._view_hits = 0
        self._executions = 0
        # Guardrail observability: queries aborted by deadline/budget vs by
        # explicit cancellation.  Both leave the snapshot, views, and cache
        # untouched — an aborted run caches nothing.
        self._timeouts = 0
        self._cancellations = 0

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    @property
    def database(self) -> Database:
        """The current database snapshot queries run over.

        :meth:`add_facts` replaces this snapshot rather than mutating it, so
        a reference obtained here stays internally consistent but may grow
        stale after a write — re-read the property per request.
        """
        return self._database

    def register_program(
        self,
        name: str,
        program,
        *,
        transforms: Iterable[Transform] = (),
        engine: Optional[str] = None,
        replace: bool = False,
    ) -> None:
        """Register a query template under *name*.

        *program* is a :class:`~repro.datalog.program.Program` or Datalog
        source text (parsed here); its goal may carry ``$parameters``.
        *transforms* become the prepared pipeline (e.g. ``MagicSets()``);
        *engine* fixes the default execution strategy.  Re-registering an
        existing name requires ``replace=True`` and drops the old prepared
        query and its cached results.
        """
        template = parse_program(program) if isinstance(program, str) else program
        if not isinstance(template, Program):
            inner = getattr(template, "program", None)
            if isinstance(inner, Program):
                template = inner
            else:
                raise TypeError(
                    f"expected a Program or source text, got {type(program).__name__}"
                )
        if template.goal is None:
            raise EvaluationError(f"query {name!r} has no goal")
        # Reject invalid templates at the registration boundary — unsafe
        # rules, inconsistent arities, unstratifiable negation/aggregation —
        # with the same diagnostics every other surface produces.  The
        # durable layer applies before it logs, so a registration refused
        # here leaves no WAL record behind.
        template.validate()
        pipeline = (
            transforms if isinstance(transforms, Pipeline) else Pipeline(transforms)
        )
        with self._lock:
            if not replace and name in self._programs:
                raise ValueError(
                    f"query {name!r} is already registered (pass replace=True)"
                )
            self._programs[name] = (template, pipeline, engine or self._default_engine)
            self._prepared.pop(name, None)
            for key in [key for key in self._cache if key[0] == name]:
                del self._cache[key]
            for key in [key for key in self._views if key[0] == name]:
                del self._views[key]

    def registered_queries(self) -> Tuple[str, ...]:
        """Names of all registered queries, sorted."""
        with self._lock:
            return tuple(sorted(self._programs))

    def prepare(self, name: str) -> PreparedQuery:
        """The (lazily compiled, cached) prepared query for *name*.

        The first call per name pays for the pipeline, the deferred-seed
        compilation, and the join plan; every later call — and every
        :meth:`execute` — reuses the same object.
        """
        return self._prepared_entry(name)[0]

    def _prepared_entry(self, name: str) -> Tuple[PreparedQuery, int]:
        # Lock-free fast path: a plain dict read is atomic under the GIL,
        # and entries are only ever inserted whole or dropped, never
        # mutated in place.
        entry = self._prepared.get(name)
        if entry is not None:
            return entry
        with self._lock:
            entry = self._prepared.get(name)
            if entry is not None:
                return entry
            try:
                template, pipeline, engine = self._programs[name]
            except KeyError:
                known = ", ".join(sorted(self._programs)) or "(none)"
                raise QueryNotRegisteredError(
                    f"no query registered under {name!r}; registered: {known}"
                ) from None
            prepared = PreparedQuery(
                template, self._database, pipeline, default_engine=engine
            )
            entry = (prepared, self._epoch)
            self._prepared[name] = entry
            return entry

    # ------------------------------------------------------------------
    # Traffic path
    # ------------------------------------------------------------------
    def _effective_timeout(self, timeout: Optional[float]) -> Optional[float]:
        """The per-request timeout, falling back to the service default."""
        return timeout if timeout is not None else self._default_timeout

    def _effective_workers(
        self, prepared: PreparedQuery, engine: Optional[str], workers: Optional[int]
    ) -> Optional[int]:
        """Per-call ``workers`` wins (strict: the engine raises if it cannot
        scale); the service-wide default is a hint and is dropped silently
        for engines without the parallel layer, so one knob can front a
        mixed-engine registry."""
        if workers is not None:
            return workers
        if self._workers is None:
            return None
        engine_object = get_engine(engine or prepared.default_engine)
        if getattr(engine_object, "supports_workers", False):
            return self._workers
        return None

    def _record_abort(self, error: QueryAborted) -> None:
        """Count a guardrail abort (timeouts vs cancellations) and re-raise."""
        with self._lock:
            if isinstance(error, QueryCancelled):
                self._cancellations += 1
            else:
                # QueryTimeout and BudgetExceeded both count as `timeouts`:
                # the request hit a resource ceiling, whichever one.
                self._timeouts += 1
        raise error

    def execute(
        self,
        name: str,
        params: Optional[Mapping[str, object]] = None,
        *,
        engine: Optional[str] = None,
        fresh: bool = False,
        max_iterations: Optional[int] = None,
        timeout: Optional[float] = None,
        budget=None,
        cancellation=None,
        workers: Optional[int] = None,
        **kw_params,
    ) -> FrozenSet[Tuple]:
        """Answers for one request; served from the LRU cache when possible.

        The cache key includes the service's write epoch and the snapshot's
        :attr:`Database.version`, so results are never stale: any write
        silently invalidates every cached entry.  ``fresh=True`` bypasses
        the cache (benchmarks).

        A binding previously materialized with :meth:`materialize` is served
        straight from its live view — writes maintain the view in place, so
        there is nothing to invalidate and no engine to run.  ``fresh=True``
        (every cache layer bypassed, the engine really runs) and an explicit
        *engine* override both skip the view, honouring their contracts.

        *timeout* (falling back to the service's ``default_timeout``),
        *budget*, and *cancellation* guard the engine run; an abort raises
        the typed :class:`~repro.errors.QueryAborted` subclass, bumps the
        ``timeouts``/``cancellations`` counter, and caches nothing — the
        snapshot, views, and cache are exactly as before the request.
        Cache and view hits never time out: there is no engine to bound.
        """
        bindings = dict(params or {})
        bindings.update(kw_params)
        if self._views and not fresh and engine is None:
            view_key = (name, self._normalize_bindings(bindings))
            with self._lock:
                view = self._views.get(view_key)
                if view is not None:
                    self._view_hits += 1
                    return view.answers()
        prepared, epoch = self._prepared_entry(name)
        key = self._cache_key(name, prepared, epoch, bindings, engine)
        if not fresh and self._cache_size:
            with self._lock:
                cached = self._cache.get(key)
                if cached is not None:
                    self._cache.move_to_end(key)
                    self._cache_hits += 1
                    return cached
                self._cache_misses += 1
        try:
            answers = prepared.answers(
                bindings,
                engine=engine,
                max_iterations=max_iterations,
                timeout=self._effective_timeout(timeout),
                budget=budget,
                cancellation=cancellation,
                workers=self._effective_workers(prepared, engine, workers),
            )
        except QueryAborted as error:
            self._record_abort(error)
        with self._lock:
            self._executions += 1
            if not fresh and self._cache_size:
                self._cache[key] = answers
                self._cache.move_to_end(key)
                while len(self._cache) > self._cache_size:
                    self._cache.popitem(last=False)
        return answers

    @staticmethod
    def _normalize_bindings(bindings: Mapping[str, object]) -> FrozenSet:
        """Unwrap ``Constant`` values so equivalent bindings share one key."""
        return frozenset(
            (key, value.value if isinstance(value, Constant) else value)
            for key, value in bindings.items()
        )

    def _cache_key(
        self,
        name: str,
        prepared: PreparedQuery,
        epoch: int,
        bindings: Mapping[str, object],
        engine: Optional[str],
    ) -> Tuple:
        # Normalise Constant-wrapped values so `who="john"` and
        # `who=Constant("john")` share one entry, and key on the *prepared
        # query's* snapshot (not self._database, which a concurrent write
        # may have swapped) so an answer computed against an old snapshot
        # can only ever be cached under that old snapshot's epoch/version.
        normalized = self._normalize_bindings(bindings)
        return (
            name,
            engine or prepared.default_engine,
            normalized,
            epoch,
            prepared.database.version,
        )

    def execute_many(
        self,
        name: str,
        bindings_list: Iterable[Mapping[str, object]],
        *,
        engine: Optional[str] = None,
        max_iterations: Optional[int] = None,
        timeout: Optional[float] = None,
        budget=None,
        cancellation=None,
        workers: Optional[int] = None,
    ) -> List[FrozenSet[Tuple]]:
        """Answers for a batch of requests, sharing one fixpoint when sound.

        Delegates to :meth:`PreparedQuery.execute_many`; the batch bypasses
        the result cache (it exists to amortize the fixpoint itself), but
        its per-binding answers are inserted into the cache afterwards so
        follow-up single requests hit.  The execution counter reflects
        engine work actually done: one for a shared fixpoint, one per
        binding otherwise.  A *timeout*/*budget*/*cancellation* guard
        covers the whole batch as one request; an abort caches nothing.
        """
        materialized = [dict(bindings) for bindings in bindings_list]
        prepared, epoch = self._prepared_entry(name)
        try:
            results = prepared.execute_many(
                materialized,
                engine=engine,
                max_iterations=max_iterations,
                timeout=self._effective_timeout(timeout),
                budget=budget,
                cancellation=cancellation,
                workers=self._effective_workers(prepared, engine, workers),
            )
        except QueryAborted as error:
            self._record_abort(error)
        if materialized:
            engine_runs = (
                1
                if prepared.uses_shared_fixpoint(len(materialized), engine)
                else len(materialized)
            )
            with self._lock:
                self._executions += engine_runs
                if self._cache_size:
                    for bindings, answers in zip(materialized, results):
                        key = self._cache_key(name, prepared, epoch, bindings, engine)
                        self._cache[key] = answers
                        self._cache.move_to_end(key)
                    while len(self._cache) > self._cache_size:
                        self._cache.popitem(last=False)
        return results

    def cursor(
        self,
        name: str,
        params: Optional[Mapping[str, object]] = None,
        *,
        engine: Optional[str] = None,
        batch_size: int = 256,
        max_iterations: Optional[int] = None,
        timeout: Optional[float] = None,
        budget=None,
        cancellation=None,
        **kw_params,
    ) -> AnswerCursor:
        """A streaming cursor over one request's answers (cache-served)."""
        answers = self.execute(
            name,
            params,
            engine=engine,
            max_iterations=max_iterations,
            timeout=timeout,
            budget=budget,
            cancellation=cancellation,
            **kw_params,
        )
        return AnswerCursor(answers, batch_size)

    # ------------------------------------------------------------------
    # Materialized views
    # ------------------------------------------------------------------
    def materialize(
        self,
        name: str,
        params: Optional[Mapping[str, object]] = None,
        *,
        timeout: Optional[float] = None,
        budget=None,
        cancellation=None,
        **kw_params,
    ) -> MaterializedView:
        """Evaluate one binding of *name* into a live materialized view.

        The view is kept current by :meth:`add_facts` / :meth:`remove_facts`
        — maintenance instead of invalidation — and :meth:`execute` serves
        the binding from it from then on.  Materializing the same binding
        twice returns the existing view.  Answers served from a view are
        engine-independent (the minimum model is), so the per-query engine
        choice does not apply to materialized bindings.

        The *timeout*/*budget*/*cancellation* guard covers the initial
        build only: an abort discards the half-built view (no view is
        installed, the snapshot untouched) and bumps the abort counters.
        Once installed, a view's maintenance under writes is never
        interrupted — it must run to completion to stay consistent.
        """
        bindings = dict(params or {})
        bindings.update(kw_params)
        effective = self._effective_timeout(timeout)
        key = (name, self._normalize_bindings(bindings))
        # The initial evaluation can be expensive, so it runs outside the
        # service lock (concurrent traffic never waits on a view build).  A
        # write landing mid-build invalidates the snapshot the build used —
        # detected by the epoch double-check, which retries on the new one.
        # Bounded: under a pathological write rate the final attempt builds
        # while holding the lock, which serializes out the race entirely.
        for _ in range(3):
            with self._lock:
                view = self._views.get(key)
                if view is not None:
                    return view
                prepared, epoch = self._prepared_entry(name)
            try:
                built = prepared.materialize(
                    bindings,
                    timeout=effective,
                    budget=budget,
                    cancellation=cancellation,
                )
            except QueryAborted as error:
                self._record_abort(error)
            with self._lock:
                view = self._views.get(key)
                if view is not None:
                    return view
                if epoch == self._epoch:
                    self._views[key] = built
                    return built
        with self._lock:
            view = self._views.get(key)
            if view is None:
                try:
                    view = self._prepared_entry(name)[0].materialize(
                        bindings,
                        timeout=effective,
                        budget=budget,
                        cancellation=cancellation,
                    )
                except QueryAborted as error:
                    self._record_abort(error)
                self._views[key] = view
            return view

    def materialized_bindings(self) -> Tuple[Tuple[str, FrozenSet], ...]:
        """The (query, bindings) pairs currently kept live, sorted."""
        with self._lock:
            return tuple(sorted(self._views, key=repr))

    def dematerialize(
        self,
        name: str,
        params: Optional[Mapping[str, object]] = None,
        **kw_params,
    ) -> bool:
        """Drop one binding's live view (it falls back to the LRU cache)."""
        bindings = dict(params or {})
        bindings.update(kw_params)
        key = (name, self._normalize_bindings(bindings))
        with self._lock:
            return self._views.pop(key, None) is not None

    # ------------------------------------------------------------------
    # Writes and observability
    # ------------------------------------------------------------------
    def add_facts(self, facts: Iterable) -> int:
        """Bulk-load facts by installing a new database snapshot.

        The current snapshot is copied, the batch applied (single version
        bump), and the copy atomically swapped in; requests already running
        finish safely against the old snapshot, and a new epoch invalidates
        every cached result and every prepared compilation (they recompile
        lazily against the new snapshot).  Writes therefore cost O(data) —
        batch them — but never block or corrupt concurrent reads.

        Materialized views are *maintained*, not invalidated: the same batch
        is applied incrementally to every live view, so their answers stay
        current without recomputation (the epoch bump only affects
        un-materialized entries).
        """
        batch = list(facts)
        with self._lock:
            self._check_writable()
            if self._write_hook is not None:
                self._write_hook("add_facts", batch)
            fresh = self._database.copy()
            added = fresh.add_facts(batch)
            if added:
                self._database = fresh
                self._prepared.clear()
                self._epoch += 1
                for view in self._views.values():
                    view.apply(insertions=batch)
            return added

    def remove_facts(self, facts: Iterable) -> int:
        """Bulk-retract facts; the write-side mirror of :meth:`add_facts`.

        The current snapshot is copied, the batch removed (single version
        bump), and the copy atomically swapped in.  Live materialized views
        absorb the same batch through counting/DRed maintenance; everything
        else is invalidated by the epoch bump.  Returns the number of facts
        actually removed.
        """
        batch = list(facts)
        with self._lock:
            self._check_writable()
            if self._write_hook is not None:
                self._write_hook("remove_facts", batch)
            fresh = self._database.copy()
            removed = fresh.remove_facts(batch)
            if removed:
                self._database = fresh
                self._prepared.clear()
                self._epoch += 1
                for view in self._views.values():
                    view.apply(deletions=batch)
            return removed

    # ------------------------------------------------------------------
    # Durability hooks and drain
    # ------------------------------------------------------------------
    def set_write_hook(self, hook: Optional[Callable[[str, List], None]]) -> None:
        """Install (or clear) the write-ahead hook.

        The hook is invoked as ``hook(kind, batch)`` — ``kind`` is
        ``"add_facts"`` or ``"remove_facts"`` — under the service lock,
        strictly before the batch is applied or the new snapshot swapped
        in.  Raising from the hook aborts the write: this is the contract
        the WAL layer (:mod:`repro.datalog.server.wal`) builds on, since a
        write acknowledged to a client must already be on disk.
        """
        with self._lock:
            self._write_hook = hook

    def begin_drain(self) -> None:
        """Stop admitting writes; in-flight and future reads keep working.

        Returns once no write is mid-apply (the drain flag is set under the
        same lock every write holds while applying), so afterwards the
        database snapshot is quiescent and safe to persist.
        """
        with self._lock:
            self._draining = True

    def end_drain(self) -> None:
        """Re-admit writes (a drain that turned out not to be a shutdown)."""
        with self._lock:
            self._draining = False

    @property
    def draining(self) -> bool:
        return self._draining

    def _check_writable(self) -> None:
        if self._draining:
            raise ServiceDrainingError(
                "service is draining for shutdown; writes are not admitted"
            )

    #: Statistics keys that are monotonically non-decreasing over a
    #: service's lifetime.  :meth:`statistics` takes its snapshot under the
    #: service lock — the same lock every counter increment and every write
    #: holds — so a single snapshot is internally consistent (no tearing:
    #: you can never observe a bumped ``write_epoch`` with the pre-write
    #: ``database_version``), and across snapshots these keys never go
    #: backwards.  The ``/metrics`` endpoint asserts this
    #: (:class:`repro.datalog.server.metrics.MetricsRegistry`), because a
    #: Prometheus counter that regresses corrupts every rate() over it.
    MONOTONIC_STATISTICS = (
        "executions",
        "cache_hits",
        "cache_misses",
        "view_hits",
        "timeouts",
        "cancellations",
        "write_epoch",
        "database_version",
    )

    def statistics(self) -> Dict[str, int]:
        """Operational counters: cache behaviour and work performed.

        The dict is a point-in-time snapshot taken under the service lock,
        so its values are mutually consistent; see
        :attr:`MONOTONIC_STATISTICS` for the keys that additionally never
        decrease across calls (gauges like ``cache_entries`` or
        ``database_facts`` legitimately go both ways).
        """
        with self._lock:
            return {
                "registered_queries": len(self._programs),
                "prepared_queries": len(self._prepared),
                "executions": self._executions,
                "cache_entries": len(self._cache),
                "cache_hits": self._cache_hits,
                "cache_misses": self._cache_misses,
                "materialized_views": len(self._views),
                "view_hits": self._view_hits,
                "timeouts": self._timeouts,
                "cancellations": self._cancellations,
                "write_epoch": self._epoch,
                "database_version": self._database.version,
                "database_facts": self._database.fact_count(),
            }

    def clear_cache(self) -> None:
        """Drop all cached results (counters are kept)."""
        with self._lock:
            self._cache.clear()

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"DatalogService(queries={sorted(self._programs)}, "
                f"cache={len(self._cache)}/{self._cache_size}, "
                f"database={self._database!r})"
            )
