"""Static analysis of Datalog programs: dependency graphs, recursion, linearity."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.datalog.atoms import NegatedAtom
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Aggregate
from repro.errors import UnstratifiableProgramError


@dataclass(frozen=True)
class DependencyGraph:
    """The predicate dependency graph of a program.

    There is an edge ``p -> q`` when some rule with head predicate ``p`` uses
    ``q`` in its body.  Strongly connected components of this graph are the
    program's mutually recursive predicate groups.
    """

    edges: FrozenSet[Tuple[str, str]]
    nodes: FrozenSet[str]

    def successors(self, node: str) -> FrozenSet[str]:
        """Predicates that *node* depends on directly."""
        return frozenset(target for source, target in self.edges if source == node)

    def predecessors(self, node: str) -> FrozenSet[str]:
        """Predicates directly depending on *node*."""
        return frozenset(source for source, target in self.edges if target == node)

    def strongly_connected_components(self) -> List[FrozenSet[str]]:
        """Tarjan's algorithm; components are returned in reverse topological order."""
        index_counter = [0]
        stack: List[str] = []
        lowlink: Dict[str, int] = {}
        index: Dict[str, int] = {}
        on_stack: Set[str] = set()
        components: List[FrozenSet[str]] = []
        adjacency: Dict[str, List[str]] = {node: [] for node in self.nodes}
        for source, target in self.edges:
            adjacency.setdefault(source, []).append(target)

        def strong_connect(node: str) -> None:
            index[node] = index_counter[0]
            lowlink[node] = index_counter[0]
            index_counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            for successor in adjacency.get(node, ()):
                if successor not in index:
                    strong_connect(successor)
                    lowlink[node] = min(lowlink[node], lowlink[successor])
                elif successor in on_stack:
                    lowlink[node] = min(lowlink[node], index[successor])
            if lowlink[node] == index[node]:
                component = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(frozenset(component))

        for node in sorted(self.nodes):
            if node not in index:
                strong_connect(node)
        return components

    def reachable_from(self, start: str) -> FrozenSet[str]:
        """Predicates reachable from *start* (including itself)."""
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for successor in self.successors(node):
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
        return frozenset(seen)


def dependency_graph(program: Program) -> DependencyGraph:
    """Build the predicate dependency graph of *program*."""
    edges = set()
    nodes = set(program.predicates())
    for rule in program.rules:
        for atom in rule.body:
            edges.add((rule.head.predicate, atom.predicate))
    return DependencyGraph(frozenset(edges), frozenset(nodes))


def recursive_predicates(program: Program) -> FrozenSet[str]:
    """IDB predicates involved in recursion (their SCC has a cycle)."""
    graph = dependency_graph(program)
    edges = graph.edges
    recursive = set()
    for component in graph.strongly_connected_components():
        if len(component) > 1:
            recursive.update(component)
        else:
            (node,) = component
            if (node, node) in edges:
                recursive.add(node)
    return frozenset(recursive & program.idb_predicates())


def is_recursive(program: Program) -> bool:
    """True if the program has at least one recursive predicate."""
    return bool(recursive_predicates(program))


def is_linear_rule(rule: Rule, recursive: FrozenSet[str]) -> bool:
    """A rule is linear if its body mentions at most one recursive predicate occurrence."""
    occurrences = sum(1 for atom in rule.body if atom.predicate in recursive)
    return occurrences <= 1


def is_linear_program(program: Program) -> bool:
    """True if every rule mentions at most one recursive IDB occurrence in its body.

    Program C of Example 1.1 (``anc(X,Y) :- anc(X,Z), anc(Z,Y)``) is the
    canonical non-linear program.
    """
    recursive = recursive_predicates(program)
    return all(is_linear_rule(rule, recursive) for rule in program.rules)


def relevant_rules(program: Program) -> Tuple[Rule, ...]:
    """Rules whose head predicate is reachable from the goal predicate.

    If the program has no goal, every rule is relevant.
    """
    if program.goal is None:
        return program.rules
    graph = dependency_graph(program)
    reachable = graph.reachable_from(program.goal.predicate)
    return tuple(rule for rule in program.rules if rule.head.predicate in reachable)


def predicate_usage(program: Program) -> Dict[str, int]:
    """Number of body occurrences of each predicate."""
    usage: Dict[str, int] = {}
    for rule in program.rules:
        for atom in rule.body:
            usage[atom.predicate] = usage.get(atom.predicate, 0) + 1
    return usage


def stratification(program: Program) -> List[FrozenSet[str]]:
    """Predicate strata in dependency (bottom-up) order.

    The strata returned here are the SCCs of the dependency graph in
    topological order, which the semi-naive engine can evaluate one at a
    time.  Negated and aggregate-rule body atoms contribute ordinary
    dependency edges too, so for a stratified program (see
    :func:`check_stratified`) this order closes every negated or
    aggregated predicate strictly before its readers fire.
    """
    graph = dependency_graph(program)
    return graph.strongly_connected_components()


def negative_dependency_edges(program: Program) -> Dict[Tuple[str, str], str]:
    """Dependency edges that must cross a stratum boundary, with their reason.

    An edge ``(p, q)`` is *negative* when some rule with head ``p`` either
    negates ``q`` in its body (reason ``"negation"``) or has an aggregate
    head term and uses ``q`` in its body (reason ``"aggregation"`` — the
    aggregate is a function of ``q``'s closed extension, so the whole body
    must be strictly lower).  When both apply, negation wins as the label.
    """
    edges: Dict[Tuple[str, str], str] = {}
    for rule in program.rules:
        head = rule.head.predicate
        has_aggregate = any(isinstance(term, Aggregate) for term in rule.head.terms)
        for atom in rule.body:
            if isinstance(atom, NegatedAtom):
                edges[(head, atom.predicate)] = "negation"
            elif has_aggregate:
                edges.setdefault((head, atom.predicate), "aggregation")
    return edges


def _cycle_through(graph: DependencyGraph, component: FrozenSet[str], source: str, target: str) -> List[str]:
    """A predicate cycle ``source -> target -> ... -> source`` inside *component*.

    BFS from *target* back to *source*, restricted to the component (both
    endpoints of a negative intra-component edge lie in one SCC, so such a
    path always exists).
    """
    if target == source:
        return [source, source]
    parents: Dict[str, str] = {}
    frontier = [target]
    seen = {target}
    while frontier:
        node = frontier.pop(0)
        for successor in sorted(graph.successors(node)):
            if successor not in component or successor in seen:
                continue
            parents[successor] = node
            if successor == source:
                path = [source]
                while path[-1] != target:
                    path.append(parents[path[-1]])
                path.reverse()
                return [source] + path
            seen.add(successor)
            frontier.append(successor)
    return [source, target, source]  # unreachable for a genuine SCC


def check_stratified(program: Program) -> None:
    """Raise :class:`UnstratifiableProgramError` on a cycle through negation.

    A program is stratified when no dependency cycle passes through a
    negated body literal or through the body of an aggregate rule.  The
    diagnostic names the offending cycle and the edge that poisons it.
    """
    negative = negative_dependency_edges(program)
    if not negative:
        return
    graph = dependency_graph(program)
    component_of: Dict[str, FrozenSet[str]] = {}
    for component in graph.strongly_connected_components():
        for node in component:
            component_of[node] = component
    for (source, target), reason in sorted(negative.items()):
        component = component_of.get(source)
        if component is None or target not in component:
            continue
        cycle = " -> ".join(_cycle_through(graph, component, source, target))
        raise UnstratifiableProgramError(
            f"program is not stratifiable: dependency cycle {cycle} passes "
            f"through {reason} on edge {source} -> {target}; negated and "
            "aggregated predicates must be fully computed in a lower stratum"
        )
