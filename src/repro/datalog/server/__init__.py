"""A deployable, crash-safe network service over :class:`DatalogService`.

The ROADMAP's "millions of users" axis needs more than a thread-safe
in-process facade: it needs a network surface, persistence, and a recovery
story.  This package provides all three with nothing beyond the standard
library:

* :mod:`~repro.datalog.server.wal` — a write-ahead log of length-prefixed,
  CRC-checksummed records with a configurable fsync policy;
* :mod:`~repro.datalog.server.snapshot` — atomic point-in-time snapshots of
  the EDB, the registered programs, and the materialized bindings;
* :mod:`~repro.datalog.server.durable` — :class:`DurableDatalogService`,
  which logs every mutation ahead of applying it and recovers a killed
  server by replaying WAL-after-snapshot (rebuilding materialized views
  through the PR 5 incremental-maintenance path);
* :mod:`~repro.datalog.server.http` — an asyncio HTTP/1.1 JSON front end
  with thread-pool engine dispatch, write-path admission control
  (429/503 + Retry-After), and graceful drain;
* :mod:`~repro.datalog.server.metrics` — Prometheus-text ``/metrics`` with
  request latency histograms and the service counters;
* :mod:`~repro.datalog.server.runner` — a multi-process load driver over
  real sockets (``repro load-bench``).
"""

from repro.datalog.server.durable import DurableDatalogService, ServiceDrainingError
from repro.datalog.server.http import DatalogHTTPServer, run_server
from repro.datalog.server.metrics import LatencyHistogram, MetricsRegistry
from repro.datalog.server.runner import LoadReport, run_load
from repro.datalog.server.snapshot import SnapshotStore
from repro.datalog.server.wal import WalRecord, WriteAheadLog

__all__ = [
    "DatalogHTTPServer",
    "DurableDatalogService",
    "LatencyHistogram",
    "LoadReport",
    "MetricsRegistry",
    "ServiceDrainingError",
    "SnapshotStore",
    "WalRecord",
    "WriteAheadLog",
    "run_load",
    "run_server",
]
