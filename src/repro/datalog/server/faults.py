"""Deterministic fault injection for the durability layer's file operations.

Crash-consistency bugs hide in the failure paths nobody exercises: the
fsync that fails after the write succeeded, the write the disk accepted
half of, the I/O call that stalls long enough for a deadline to pass.
This module lets tests script those failures *exactly* — the Nth fsync of
the WAL fails, the 3rd snapshot write is torn in half — so the chaos suite
can assert, deterministically and repeatably, that the recovered model
always equals the acknowledged prefix.

Seams (consulted by :mod:`~repro.datalog.server.wal` and
:mod:`~repro.datalog.server.snapshot` when constructed with ``faults=``):

======================  ====================================================
``wal.append``          the buffered write of one framed record
``wal.fsync``           the per-append fsync (``fsync="always"``)
``wal.sync``            the batched :meth:`WriteAheadLog.sync` fsync
``wal.truncate``        the post-snapshot log reset
``snapshot.write``      the temp-file write of the snapshot blob
``snapshot.fsync``      the temp-file fsync before the rename
``snapshot.replace``    the atomic ``os.replace`` installing the snapshot
======================  ====================================================

Fault kinds:

* ``"fail"`` — raise :class:`FaultInjected` instead of performing the op;
* ``"partial"`` — perform only a prefix of a write (``fraction`` of the
  payload bytes), then raise: the torn-record case.  On non-write seams it
  degenerates to ``"fail"``;
* ``"delay"`` — sleep ``delay`` seconds, then perform the op normally:
  slow I/O for deadline tests, not a failure.

The injected error is an :class:`OSError` subclass, so production code
paths treat it exactly like a real disk error — no test-only branches.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

FAULT_KINDS = ("fail", "partial", "delay")

#: Every seam the durability layer consults, for validation and docs.
SEAMS = (
    "wal.append",
    "wal.fsync",
    "wal.sync",
    "wal.truncate",
    "snapshot.write",
    "snapshot.fsync",
    "snapshot.replace",
)


class FaultInjected(OSError):
    """The scripted disk failure, raised at the scripted seam and call index."""


@dataclass(frozen=True)
class Fault:
    """One scripted fault: the *index*-th call (0-based) of seam *op*.

    ``fraction`` (``"partial"`` only) is the prefix of the payload actually
    written before the failure; ``delay`` (``"delay"`` only) is the sleep
    in seconds before the op proceeds.
    """

    op: str
    index: int
    kind: str = "fail"
    fraction: float = 0.5
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.op not in SEAMS:
            raise ValueError(f"unknown fault seam {self.op!r}; seams: {SEAMS}")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; kinds: {FAULT_KINDS}")
        if self.index < 0:
            raise ValueError(f"index must be non-negative, got {self.index}")
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {self.fraction}")
        if self.delay < 0:
            raise ValueError(f"delay must be non-negative, got {self.delay}")


@dataclass(frozen=True)
class InjectedFault:
    """The record of one fault that actually fired (for test assertions)."""

    op: str
    index: int
    kind: str


class ScriptedFaults:
    """A deterministic fault plan the durability layer consults per file op.

    Construct with the :class:`Fault` list, hand the object to
    :class:`~repro.datalog.server.wal.WriteAheadLog`,
    :class:`~repro.datalog.server.snapshot.SnapshotStore`, or
    :class:`~repro.datalog.server.durable.DurableDatalogService` via their
    ``faults=`` parameter.  Each seam keeps its own 0-based call counter;
    a :class:`Fault` fires when its seam's counter equals its index.
    Thread-safe: counters are read and bumped under one lock, so a fault
    fires exactly once even under concurrent writers.
    """

    def __init__(self, faults: Iterable[Fault] = ()):
        self._plan: Dict[Tuple[str, int], Fault] = {}
        for fault in faults:
            key = (fault.op, fault.index)
            if key in self._plan:
                raise ValueError(
                    f"duplicate fault for {fault.op!r} call #{fault.index}"
                )
            self._plan[key] = fault
        self._counters: Dict[str, int] = {}
        self._injected: List[InjectedFault] = []
        self._lock = threading.Lock()

    @property
    def injected(self) -> Tuple[InjectedFault, ...]:
        """Every fault that has fired so far, in firing order."""
        with self._lock:
            return tuple(self._injected)

    def calls(self, op: str) -> int:
        """How many times seam *op* has been consulted."""
        with self._lock:
            return self._counters.get(op, 0)

    def _next(self, op: str) -> Optional[Fault]:
        with self._lock:
            index = self._counters.get(op, 0)
            self._counters[op] = index + 1
            fault = self._plan.get((op, index))
            if fault is not None:
                self._injected.append(InjectedFault(op, index, fault.kind))
            return fault

    def check(self, op: str) -> None:
        """Consult seam *op* for a non-write operation (fsync, replace...).

        Raises :class:`FaultInjected` for scripted ``fail``/``partial``
        faults, sleeps through ``delay`` faults, and returns normally
        otherwise — the caller then performs the real operation.
        """
        fault = self._next(op)
        if fault is None:
            return
        if fault.kind == "delay":
            time.sleep(fault.delay)
            return
        raise FaultInjected(f"injected {fault.kind} fault at {op} call #{fault.index}")

    def filter_write(self, op: str, payload: bytes) -> bytes:
        """Consult seam *op* for a write of *payload*; return what to write.

        Returns the full payload normally (after any scripted delay).  For a
        ``"partial"`` fault it raises :class:`PartialWrite`; the caller
        writes its ``torn`` prefix to the file and then raises its
        ``error`` — split this way so the torn bytes genuinely reach the
        file before the failure propagates.
        """
        fault = self._next(op)
        if fault is None:
            return payload
        if fault.kind == "delay":
            time.sleep(fault.delay)
            return payload
        if fault.kind == "partial":
            torn = payload[: int(len(payload) * fault.fraction)]
            raise PartialWrite(op, fault.index, torn)
        raise FaultInjected(f"injected fail fault at {op} call #{fault.index}")


class PartialWrite(Exception):
    """Internal control flow for ``"partial"`` faults: carries the torn prefix.

    Raised by :meth:`ScriptedFaults.filter_write`; the seam's caller writes
    ``self.torn`` to the file and then raises :attr:`error` — so the disk
    really holds a torn record when the error surfaces, exactly like a
    crash mid-write.
    """

    def __init__(self, op: str, index: int, torn: bytes):
        super().__init__(f"partial write at {op} call #{index}")
        self.torn = torn
        self.error = FaultInjected(
            f"injected partial-write fault at {op} call #{index}"
        )
