"""Prometheus text-format metrics for the Datalog server (stdlib only).

Two sources feed the ``/metrics`` endpoint:

* the service's :meth:`~repro.datalog.service.DatalogService.statistics`
  snapshot, exported as ``repro_datalog_<key>`` — counters for the keys in
  :attr:`DatalogService.MONOTONIC_STATISTICS`, gauges for the rest; and
* the HTTP layer's own request counters and latency histograms,
  ``repro_http_requests_total{endpoint,status}`` and
  ``repro_http_request_seconds{endpoint}``.

The registry enforces the monotonicity contract at render time: a counter
that went backwards since the previous render raises
:class:`MonotonicityError` instead of being exported, because a regressing
Prometheus counter silently corrupts every ``rate()`` computed over it.
The service holds up its side by snapshotting under its lock (see
``DatalogService.statistics``); the assertion here is the tripwire that
would catch a future regression.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = ["DEFAULT_BUCKETS", "LatencyHistogram", "MetricsRegistry", "MonotonicityError"]

#: Histogram bucket upper bounds in seconds — spans sub-millisecond cache
#: hits through multi-second cold materializations.
DEFAULT_BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)


class MonotonicityError(RuntimeError):
    """A statistics counter decreased between two ``/metrics`` renders."""


class LatencyHistogram:
    """A fixed-bucket latency histogram (thread-safe, cumulative on render)."""

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS):
        self._bounds: Tuple[float, ...] = tuple(sorted(buckets))
        if not self._bounds:
            raise ValueError("at least one bucket bound is required")
        # counts[i] is the number of observations in (bounds[i-1], bounds[i]];
        # the final slot is the +Inf overflow bucket.
        self._counts = [0] * (len(self._bounds) + 1)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    @property
    def bounds(self) -> Tuple[float, ...]:
        return self._bounds

    def observe(self, seconds: float) -> None:
        index = bisect_left(self._bounds, seconds)
        with self._lock:
            self._counts[index] += 1
            self._sum += seconds
            self._count += 1

    def snapshot(self) -> Tuple[List[int], float, int]:
        """``(cumulative bucket counts incl. +Inf, sum, count)``."""
        with self._lock:
            counts = list(self._counts)
            total_sum = self._sum
            total = self._count
        cumulative: List[int] = []
        running = 0
        for value in counts:
            running += value
            cumulative.append(running)
        return cumulative, total_sum, total


def _format_float(value: float) -> str:
    """Prometheus-friendly numbers: integers bare, floats via repr."""
    if value == int(value):
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class MetricsRegistry:
    """Request accounting plus the statistics exporter behind ``/metrics``."""

    def __init__(self, namespace: str = "repro"):
        self._namespace = namespace
        self._lock = threading.Lock()
        self._requests: Dict[Tuple[str, str], int] = {}
        self._histograms: Dict[str, LatencyHistogram] = {}
        self._last_monotonic: Dict[str, int] = {}

    def observe_request(self, endpoint: str, status: int, seconds: float) -> None:
        """Record one finished HTTP request."""
        key = (endpoint, str(status))
        with self._lock:
            self._requests[key] = self._requests.get(key, 0) + 1
            histogram = self._histograms.get(endpoint)
            if histogram is None:
                histogram = self._histograms.setdefault(endpoint, LatencyHistogram())
        histogram.observe(seconds)

    def check_monotonic(
        self, statistics: Mapping[str, int], keys: Iterable[str]
    ) -> None:
        """Assert the monotonic *keys* of *statistics* never regressed.

        Remembers the highest value seen per key; raises
        :class:`MonotonicityError` naming the offending counter otherwise.
        """
        with self._lock:
            for key in keys:
                if key not in statistics:
                    continue
                value = statistics[key]
                previous = self._last_monotonic.get(key)
                if previous is not None and value < previous:
                    raise MonotonicityError(
                        f"statistics counter {key!r} went backwards: "
                        f"{previous} -> {value}"
                    )
                self._last_monotonic[key] = value

    def render(
        self,
        statistics: Mapping[str, int],
        monotonic_keys: Iterable[str] = (),
        extra_gauges: Optional[Mapping[str, float]] = None,
    ) -> str:
        """The full Prometheus text exposition (version 0.0.4)."""
        monotonic = tuple(monotonic_keys)
        self.check_monotonic(statistics, monotonic)
        monotonic_set = set(monotonic)
        ns = self._namespace
        lines: List[str] = []
        for key in sorted(statistics):
            kind = "counter" if key in monotonic_set else "gauge"
            metric = f"{ns}_datalog_{key}"
            lines.append(f"# HELP {metric} DatalogService statistic {key!r}.")
            lines.append(f"# TYPE {metric} {kind}")
            lines.append(f"{metric} {_format_float(float(statistics[key]))}")
        for key in sorted(extra_gauges or {}):
            metric = f"{ns}_{key}"
            lines.append(f"# HELP {metric} Server gauge {key!r}.")
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_format_float(float(extra_gauges[key]))}")
        with self._lock:
            requests = dict(self._requests)
            histograms = dict(self._histograms)
        if requests:
            metric = f"{ns}_http_requests_total"
            lines.append(f"# HELP {metric} HTTP requests served, by endpoint and status.")
            lines.append(f"# TYPE {metric} counter")
            for (endpoint, status), count in sorted(requests.items()):
                lines.append(
                    f'{metric}{{endpoint="{_escape_label(endpoint)}",'
                    f'status="{status}"}} {count}'
                )
        if histograms:
            metric = f"{ns}_http_request_seconds"
            lines.append(f"# HELP {metric} HTTP request latency, by endpoint.")
            lines.append(f"# TYPE {metric} histogram")
            for endpoint, histogram in sorted(histograms.items()):
                label = _escape_label(endpoint)
                cumulative, total_sum, total = histogram.snapshot()
                for bound, count in zip(histogram.bounds, cumulative):
                    lines.append(
                        f'{metric}_bucket{{endpoint="{label}",'
                        f'le="{_format_float(bound)}"}} {count}'
                    )
                lines.append(
                    f'{metric}_bucket{{endpoint="{label}",le="+Inf"}} {cumulative[-1]}'
                )
                lines.append(f'{metric}_sum{{endpoint="{label}"}} {repr(total_sum)}')
                lines.append(f'{metric}_count{{endpoint="{label}"}} {total}')
        return "\n".join(lines) + "\n"
