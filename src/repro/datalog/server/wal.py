"""Write-ahead log: length-prefixed, checksummed records on an append-only file.

Every mutation the durable service accepts is encoded as one record and
appended — and optionally fsynced — *before* it is applied to the in-memory
service, so an acknowledged write can always be replayed after a crash.

Record framing (all integers big-endian)::

    +----+----------------+-----------------+------------------+
    | WR | length (u32)   | crc32 (u32)     | payload (length) |
    +----+----------------+-----------------+------------------+

The payload is one value in the compact codec of
:mod:`repro.datalog.database` (``encode_obj`` / ``decode_obj``) — in
practice a ``{"kind": ..., ...}`` dict.  The codec's pickle escape hatch
is disabled in both directions: appends reject values that would need it
(a write fails fast with ``ValueError`` instead of persisting bytes replay
would have to unpickle), and replay never calls ``pickle.loads`` — a
hand-crafted pickle record in a tampered log reads as a torn tail, not as
code execution.  A CRC is integrity, not authentication; whoever can write
the data directory already owns the database *contents*, but must not own
the process.  A torn tail (truncated header,
truncated payload, or checksum mismatch — what a ``kill -9`` mid-write
leaves behind) ends replay cleanly at the last intact record; opening the
log for append repairs the file by truncating the corrupt tail.

fsync policy (``fsync=``):

* ``"always"`` — fsync after every append: an acknowledged write survives
  power loss.  The durability contract the recovery tests assume.
* ``"batch"`` — flush to the OS after every append, fsync only on
  :meth:`sync` (the HTTP server calls it on a timer and on drain): bounded
  data loss on power failure, no loss on process crash.
* ``"never"`` — flush to the OS only; fastest, loses only on power failure
  (the OS still has the bytes when the process dies).
"""

from __future__ import annotations

import io
import os
import struct
import threading
import zlib
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.datalog.database import decode_obj, encode_obj

_MAGIC = b"WR"
_HEADER = struct.Struct(">2sII")  # magic, payload length, payload crc32

FSYNC_POLICIES = ("always", "batch", "never")


@dataclass(frozen=True)
class WalRecord:
    """One replayed record: its sequence number (0-based) and decoded payload."""

    sequence: int
    payload: object


class WriteAheadLog:
    """An append-only record log with checksummed framing and tail repair.

    Thread-safe: appends are serialized by an internal lock, so concurrent
    writers (the service's write hook runs under the service lock, registry
    operations under the durable lock) can never interleave partial records.
    """

    def __init__(self, path, *, fsync: str = "always", faults=None):
        if fsync not in FSYNC_POLICIES:
            raise ValueError(f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}")
        self._path = os.fspath(path)
        self._fsync = fsync
        # Optional ScriptedFaults plan (repro.datalog.server.faults): when
        # set, every write/fsync/truncate consults its seam first, so the
        # chaos tests can script the exact disk failure they need.
        self._faults = faults
        self._lock = threading.Lock()
        self._record_count, valid_bytes = self._scan()
        # Open for append, repairing any torn tail first: a record written
        # after a truncation would otherwise be unreachable garbage.
        self._repair(valid_bytes)
        self._file = open(self._path, "ab")
        self._appended_since_sync = 0
        # Byte length of the acknowledged prefix — the rollback point for a
        # failed append.  Tracked explicitly (not via tell()) so it is
        # immune to whatever a failed write left the file position at.
        self._size = valid_bytes
        # Set when a rollback itself failed: the file may end in bytes that
        # were never acknowledged, so further appends would land after
        # garbage and be silently lost to tail repair.  Refuse them instead.
        self._poisoned = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def path(self) -> str:
        return self._path

    @property
    def fsync_policy(self) -> str:
        return self._fsync

    @property
    def record_count(self) -> int:
        """Number of intact records currently in the log."""
        with self._lock:
            return self._record_count

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append(self, payload: object) -> int:
        """Encode, frame, and append one record; returns its sequence number.

        The record is durable per the fsync policy when this returns —
        callers apply the mutation only afterwards (write-*ahead* logging).

        Appends are atomic against I/O failure: if the write or its fsync
        fails (really, or via an injected fault), the file is truncated back
        to the pre-append offset before the error propagates.  Without the
        rollback, a record whose fsync failed would still replay — an
        unacknowledged write resurrected after recovery — and any *later*
        append would land behind a torn record and be lost to tail repair.
        """
        body = encode_obj(payload, allow_pickle=False)
        frame = _HEADER.pack(_MAGIC, len(body), zlib.crc32(body)) + body
        with self._lock:
            if self._poisoned:
                raise OSError(
                    "write-ahead log is poisoned: a failed append could not "
                    "be rolled back, so further appends would be unreachable"
                )
            try:
                data = frame
                if self._faults is not None:
                    from repro.datalog.server.faults import PartialWrite

                    try:
                        data = self._faults.filter_write("wal.append", frame)
                    except PartialWrite as partial:
                        # Land the torn prefix on disk first — the failure
                        # must look exactly like a crash mid-write.
                        self._file.write(partial.torn)
                        self._file.flush()
                        raise partial.error from None
                self._file.write(data)
                self._file.flush()
                if self._fsync == "always":
                    if self._faults is not None:
                        self._faults.check("wal.fsync")
                    os.fsync(self._file.fileno())
            except Exception:
                self._rollback()
                raise
            if self._fsync != "always":
                self._appended_since_sync += 1
            self._size += len(frame)
            sequence = self._record_count
            self._record_count += 1
            return sequence

    def _rollback(self) -> None:
        """Truncate the file back to the acknowledged prefix (lock held)."""
        try:
            self._file.truncate(self._size)
            self._file.flush()
            os.fsync(self._file.fileno())
        except OSError:
            # The log may now end in unacknowledged bytes; refuse further
            # appends rather than silently losing them to tail repair.
            self._poisoned = True

    def sync(self) -> None:
        """fsync pending appends (a no-op under ``always`` with nothing pending).

        A failed sync (real or injected) propagates but keeps the pending
        counter: the records are intact in the OS buffer, and the next
        successful :meth:`sync` makes them durable.
        """
        with self._lock:
            if self._appended_since_sync or self._fsync != "always":
                if self._faults is not None:
                    self._faults.check("wal.sync")
                self._file.flush()
                os.fsync(self._file.fileno())
                self._appended_since_sync = 0

    def truncate(self) -> None:
        """Drop every record (called after a snapshot has captured them).

        The fault seam fires *before* any byte is dropped: a failed
        truncate leaves the log fully intact, which recovery handles
        (snapshot + replay of records the snapshot already contains is
        idempotent for fact batches and guarded for registry ops).
        """
        with self._lock:
            if self._faults is not None:
                self._faults.check("wal.truncate")
            self._file.seek(0)
            self._file.truncate()
            self._file.flush()
            os.fsync(self._file.fileno())
            self._record_count = 0
            self._appended_since_sync = 0
            self._size = 0

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.flush()
                os.fsync(self._file.fileno())
                self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    @classmethod
    def replay(cls, path) -> Tuple[List[WalRecord], bool]:
        """Decode all intact records of the file at *path*.

        Returns ``(records, tail_corrupt)``: replay stops at the first
        truncated or checksum-failing record, and ``tail_corrupt`` reports
        whether such a torn tail was present (a missing file is just an
        empty, intact log).  Never raises on corrupt data — a crashed
        server must always be able to come back up.
        """
        records: List[WalRecord] = []
        path = os.fspath(path)
        if not os.path.exists(path):
            return records, False
        with open(path, "rb") as handle:
            data = handle.read()
        offset = 0
        while offset < len(data):
            record, next_offset = cls._decode_one(data, offset)
            if record is None:
                return records, True
            records.append(WalRecord(len(records), record))
            offset = next_offset
        return records, False

    @classmethod
    def iter_records(cls, path) -> Iterator[WalRecord]:
        """Iterate intact records, silently stopping at a torn tail."""
        records, _ = cls.replay(path)
        return iter(records)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _decode_one(data: bytes, offset: int) -> Tuple[Optional[object], int]:
        """Decode the record at *offset*; ``(None, offset)`` when torn/corrupt."""
        if offset + _HEADER.size > len(data):
            return None, offset
        magic, length, checksum = _HEADER.unpack_from(data, offset)
        if magic != _MAGIC:
            return None, offset
        start = offset + _HEADER.size
        end = start + length
        if end > len(data):
            return None, offset
        body = data[start:end]
        if zlib.crc32(body) != checksum:
            return None, offset
        try:
            payload = decode_obj(body, allow_pickle=False)
        except Exception:
            # A checksum collision over garbage, or a planted pickle record
            # (never unpickled) — treat either as a torn tail rather than
            # dying.
            return None, offset
        return payload, end

    def _scan(self) -> Tuple[int, int]:
        """Count intact records and the byte length of the valid prefix."""
        if not os.path.exists(self._path):
            return 0, 0
        with open(self._path, "rb") as handle:
            data = handle.read()
        offset = 0
        count = 0
        while offset < len(data):
            record, next_offset = self._decode_one(data, offset)
            if record is None:
                break
            count += 1
            offset = next_offset
        return count, offset

    def _repair(self, valid_bytes: int) -> None:
        """Truncate a torn tail so appends continue from the last good record."""
        if not os.path.exists(self._path):
            # Create the file eagerly so `replay` on a live log never races
            # a first append's implicit creation.
            with open(self._path, "wb"):
                pass
            return
        if os.path.getsize(self._path) > valid_bytes:
            with open(self._path, "r+b") as handle:
                handle.truncate(valid_bytes)
                handle.flush()
                os.fsync(handle.fileno())
