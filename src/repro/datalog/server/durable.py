"""DurableDatalogService: crash-safe writes over a :class:`DatalogService`.

Layering::

    client ----> DurableDatalogService ----> DatalogService (in-memory)
                     |         \\
                  WriteAheadLog  SnapshotStore        (on disk, one data dir)

Every mutation — fact batches, program registrations, view materializations
— is acknowledged only after both the WAL append and the in-memory apply
succeeded.  Fact batches log *before* they apply (the service's write hook
runs under the service lock strictly ahead of the apply, and a hook failure
aborts the write).  Registry operations (``register_program``,
``materialize``, ``dematerialize``) apply *before* they log: every way the
operation can be rejected — parse error, missing goal, unknown query,
draining — surfaces to the caller with nothing written, so replay can never
trip over a request the live server refused.  Both orders are serialized by
the mutation lock, so the WAL order always equals the apply order.
Periodically, and on clean shutdown, the full state (EDB bytes + program
sources + materialized bindings) is snapshotted atomically and the WAL is
truncated.

Recovery (``DurableDatalogService(data_dir)`` on a directory with state)
loads the latest intact snapshot, replays every intact WAL record in order,
and rebuilds each materialized view — so a server killed at any byte
offset restarts with exactly the model every acknowledged write produced.
A record that no longer applies (e.g. a log written by a buggy or newer
version) is skipped and reported on :attr:`RecoveryReport.skipped` rather
than aborting startup — one bad record must never brick the data directory.
Replay tolerates a WAL that overlaps the snapshot (the crash window between
snapshot write and WAL truncation): every operation is idempotent and
replayed in order, so the final state is determined by each key's last
operation — the same state the uninterrupted run reached.

Contract: mutate only through this facade (the inner service is reachable
via :attr:`service` for reads).  A write acknowledged under
``fsync="always"`` survives ``kill -9`` and power loss; under ``"batch"``
it survives process death and loses at most the records since the last
:meth:`sync` on power loss.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.datalog.atoms import Atom
from repro.datalog.database import Database
from repro.datalog.server.snapshot import SnapshotStore
from repro.datalog.server.wal import WriteAheadLog
from repro.datalog.service import DatalogService, ServiceDrainingError
from repro.datalog.terms import Constant
from repro.datalog.transforms import MagicSets, PropagateConstants, Rectify
from repro.errors import EvaluationError

__all__ = [
    "DurableDatalogService",
    "RecoveryReport",
    "ServiceDrainingError",
    "TRANSFORMS_BY_NAME",
    "resolve_transforms",
]

WAL_NAME = "wal.log"

#: The named transforms a client may attach to a registered program.  Names
#: (not objects) are what the WAL and snapshots persist, so the set of
#: registrable pipelines is exactly this registry.
TRANSFORMS_BY_NAME = {
    "magic": MagicSets,
    "rectify": Rectify,
    "constants": PropagateConstants,
}


def resolve_transforms(names: Iterable[str]) -> Tuple:
    """Instantiate pipeline stages from their persisted names."""
    stages = []
    for name in names:
        try:
            stages.append(TRANSFORMS_BY_NAME[name]())
        except KeyError:
            known = ", ".join(sorted(TRANSFORMS_BY_NAME))
            raise EvaluationError(
                f"unknown transform {name!r}; available: {known}"
            ) from None
    return tuple(stages)


@dataclass(frozen=True)
class RecoveryReport:
    """What recovery found in the data directory."""

    snapshot_loaded: bool
    wal_records_replayed: int
    wal_tail_corrupt: bool
    programs_recovered: int
    views_rebuilt: int
    #: Human-readable descriptions of snapshot entries or WAL records that
    #: failed to apply and were skipped (empty on a healthy recovery).
    skipped: Tuple[str, ...] = ()

    def __str__(self) -> str:
        source = "snapshot + WAL" if self.snapshot_loaded else "WAL only"
        tail = " (torn tail truncated)" if self.wal_tail_corrupt else ""
        skipped = f", {len(self.skipped)} unreplayable skipped" if self.skipped else ""
        return (
            f"recovered from {source}: {self.wal_records_replayed} record(s) "
            f"replayed{tail}{skipped}, {self.programs_recovered} program(s), "
            f"{self.views_rebuilt} view(s) rebuilt"
        )


class DurableDatalogService:
    """A :class:`DatalogService` whose writes survive ``kill -9``."""

    def __init__(
        self,
        data_dir,
        *,
        fsync: str = "always",
        snapshot_every: int = 1024,
        snapshot_on_close: bool = True,
        cache_size: int = 256,
        default_engine: str = "seminaive",
        default_timeout: Optional[float] = None,
        engine_workers: Optional[int] = None,
        faults=None,
    ):
        if snapshot_every < 1:
            raise ValueError("snapshot_every must be positive")
        self._data_dir = os.fspath(data_dir)
        os.makedirs(self._data_dir, exist_ok=True)
        self._wal_path = os.path.join(self._data_dir, WAL_NAME)
        # `faults` (a ScriptedFaults plan) reaches every disk seam of this
        # data directory; recovery reads are deliberately exempt — chaos
        # tests crash the writer, then recover with a clean instance.
        self._snapshot_store = SnapshotStore(self._data_dir, faults=faults)
        self._snapshot_every = snapshot_every
        self._snapshot_on_close = snapshot_on_close
        self._snapshots_taken = 0
        self._closed = False
        # Serializes every mutating entry point (and snapshots) of this
        # facade.  Lock order is always mutate lock -> service lock -> WAL
        # lock; nothing ever takes them in another order.
        self._mutate_lock = threading.RLock()
        # name -> {"source": str, "transforms": [names], "engine": str|None};
        # the persistable description of the registry (snapshots store it).
        self._program_specs: Dict[str, Dict] = {}

        self.recovery = self._recover(
            cache_size, default_engine, default_timeout, engine_workers
        )
        # Only after replay is the log opened for append (repairing any torn
        # tail) and the write-ahead hook armed.
        self._wal = WriteAheadLog(self._wal_path, fsync=fsync, faults=faults)
        self._service.set_write_hook(self._log_fact_batch)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _recover(
        self,
        cache_size: int,
        default_engine: str,
        default_timeout: Optional[float] = None,
        engine_workers: Optional[int] = None,
    ) -> RecoveryReport:
        state = self._snapshot_store.load()
        database = (
            Database.from_bytes(state["database"], allow_pickle=False)
            if state is not None
            else Database()
        )
        self._service = DatalogService(
            database,
            cache_size=cache_size,
            default_engine=default_engine,
            default_timeout=default_timeout,
            workers=engine_workers,
        )
        # Startup must never fail on persisted state the live server would
        # have rejected (or that a newer/older version wrote): anything that
        # does not apply is skipped and reported, not raised — a single bad
        # entry must not brick the data directory.
        skipped: List[str] = []
        if state is not None:
            for name, spec in state.get("programs", {}).items():
                try:
                    self._apply_register(
                        name,
                        spec["source"],
                        spec.get("transforms", ()),
                        spec.get("engine"),
                    )
                except Exception as exc:
                    skipped.append(f"snapshot program {name!r}: {exc}")
            for view in state.get("views", ()):
                try:
                    self._service.materialize(view["name"], view["params"])
                except Exception as exc:
                    skipped.append(f"snapshot view {view.get('name')!r}: {exc}")
        records, tail_corrupt = WriteAheadLog.replay(self._wal_path)
        replayed = 0
        for record in records:
            try:
                self._apply_record(record.payload)
                replayed += 1
            except Exception as exc:
                skipped.append(f"WAL record {record.sequence}: {exc}")
        return RecoveryReport(
            snapshot_loaded=state is not None,
            wal_records_replayed=replayed,
            wal_tail_corrupt=tail_corrupt,
            programs_recovered=len(self._program_specs),
            views_rebuilt=len(self._service.materialized_bindings()),
            skipped=tuple(skipped),
        )

    def _apply_record(self, payload) -> None:
        """Apply one replayed WAL record to the in-memory service."""
        if not isinstance(payload, dict) or "kind" not in payload:
            raise EvaluationError(f"malformed WAL record: {payload!r}")
        kind = payload["kind"]
        if kind == "add_facts":
            self._service.add_facts(payload["facts"])
        elif kind == "remove_facts":
            self._service.remove_facts(payload["facts"])
        elif kind == "register":
            self._apply_register(
                payload["name"],
                payload["source"],
                payload.get("transforms", ()),
                payload.get("engine"),
            )
        elif kind == "materialize":
            self._service.materialize(payload["name"], payload["params"])
        elif kind == "dematerialize":
            self._service.dematerialize(payload["name"], payload["params"])
        else:
            raise EvaluationError(f"unknown WAL record kind {kind!r}")

    def _apply_register(
        self, name: str, source: str, transforms, engine: Optional[str]
    ) -> None:
        self._service.register_program(
            name,
            source,
            transforms=resolve_transforms(transforms),
            engine=engine,
            replace=True,
        )
        self._program_specs[name] = {
            "source": source,
            "transforms": list(transforms),
            "engine": engine,
        }

    # ------------------------------------------------------------------
    # Write-ahead logging
    # ------------------------------------------------------------------
    @staticmethod
    def _normalize_facts(facts: Iterable) -> List[Tuple[str, Tuple]]:
        """Fact batches as codec-friendly ``(predicate, values)`` pairs."""
        normalized: List[Tuple[str, Tuple]] = []
        for fact in facts:
            if isinstance(fact, Atom):
                normalized.append((fact.predicate, fact.as_fact_tuple()))
            else:
                predicate, values = fact
                normalized.append((str(predicate), tuple(values)))
        return normalized

    @staticmethod
    def _normalize_params(params: Mapping[str, object]) -> Dict[str, object]:
        return {
            key: (value.value if isinstance(value, Constant) else value)
            for key, value in params.items()
        }

    def _log_fact_batch(self, kind: str, batch: List) -> None:
        # Runs under the service lock, before the batch is applied; raising
        # here (e.g. disk full) aborts the write entirely.
        self._wal.append({"kind": kind, "facts": self._normalize_facts(batch)})

    def _log(self, payload: Dict) -> None:
        self._wal.append(payload)

    # ------------------------------------------------------------------
    # Mutating surface (logged)
    # ------------------------------------------------------------------
    def register_program(
        self,
        name: str,
        source: str,
        *,
        transforms: Iterable[str] = (),
        engine: Optional[str] = None,
        replace: bool = False,
    ) -> None:
        """Register a query template from *source text* under *name*.

        Unlike the in-memory service, *transforms* are **names** from
        :data:`TRANSFORMS_BY_NAME` — the registration must be serializable
        to the WAL and to snapshots, so arbitrary transform objects are not
        accepted here.
        """
        names = [str(t) for t in transforms]
        resolve_transforms(names)  # reject unknown transform names up front
        with self._mutate_lock:
            self._check_open()
            if not replace and name in self._program_specs:
                raise ValueError(
                    f"query {name!r} is already registered (pass replace=True)"
                )
            if self._service.draining:
                raise ServiceDrainingError(
                    "service is draining for shutdown; writes are not admitted"
                )
            # Apply before logging: a rejected registration (parse error,
            # missing goal) must leave no WAL record behind, or the next
            # restart would refuse to come up replaying it.
            self._apply_register(name, source, names, engine)
            self._log(
                {
                    "kind": "register",
                    "name": name,
                    "source": source,
                    "transforms": names,
                    "engine": engine,
                }
            )
            self._maybe_snapshot()

    def add_facts(self, facts: Iterable) -> int:
        with self._mutate_lock:
            self._check_open()
            added = self._service.add_facts(facts)
            self._maybe_snapshot()
            return added

    def remove_facts(self, facts: Iterable) -> int:
        with self._mutate_lock:
            self._check_open()
            removed = self._service.remove_facts(facts)
            self._maybe_snapshot()
            return removed

    def materialize(self, name: str, params: Optional[Mapping] = None, **kw_params):
        merged = dict(params or {})
        merged.update(kw_params)
        normalized = self._normalize_params(merged)
        with self._mutate_lock:
            self._check_open()
            if self._service.draining:
                raise ServiceDrainingError(
                    "service is draining for shutdown; writes are not admitted"
                )
            # Apply before logging: materializing an unregistered query (or
            # a binding the prepared query rejects) raises here with nothing
            # written, so replay never sees a record the server refused.
            view = self._service.materialize(name, normalized)
            self._log({"kind": "materialize", "name": name, "params": normalized})
            self._maybe_snapshot()
            return view

    def dematerialize(self, name: str, params: Optional[Mapping] = None, **kw_params) -> bool:
        merged = dict(params or {})
        merged.update(kw_params)
        normalized = self._normalize_params(merged)
        with self._mutate_lock:
            self._check_open()
            dropped = self._service.dematerialize(name, normalized)
            if dropped:
                # A no-op drop is not a mutation; logging it would only
                # lengthen replay.
                self._log(
                    {"kind": "dematerialize", "name": name, "params": normalized}
                )
                self._maybe_snapshot()
            return dropped

    # ------------------------------------------------------------------
    # Read surface (unlogged passthrough)
    # ------------------------------------------------------------------
    @property
    def service(self) -> DatalogService:
        """The in-memory service (safe for reads; mutate through the facade)."""
        return self._service

    @property
    def data_dir(self) -> str:
        return self._data_dir

    def execute(self, name: str, params: Optional[Mapping] = None, **kwargs):
        return self._service.execute(name, params, **kwargs)

    def execute_many(self, name: str, bindings_list, **kwargs):
        return self._service.execute_many(name, bindings_list, **kwargs)

    def prepare(self, name: str):
        return self._service.prepare(name)

    def registered_queries(self) -> Tuple[str, ...]:
        return self._service.registered_queries()

    def materialized_bindings(self):
        return self._service.materialized_bindings()

    def statistics(self) -> Dict[str, int]:
        """Service counters plus the durability layer's own."""
        stats = self._service.statistics()
        stats["wal_records"] = self._wal.record_count
        stats["snapshots_taken"] = self._snapshots_taken
        return stats

    # ------------------------------------------------------------------
    # Snapshots, drain, shutdown
    # ------------------------------------------------------------------
    def snapshot(self) -> None:
        """Persist the full state atomically, then truncate the WAL.

        Crash-ordering: the snapshot is fully on disk (temp + rename +
        directory fsync) *before* the WAL shrinks, so at every instant the
        directory recovers to the current state — either old snapshot +
        full WAL, or new snapshot + (possibly still-full, harmlessly
        replayable) WAL.
        """
        with self._mutate_lock:
            self._check_open()
            self._snapshot_store.write(self._capture_state())
            self._wal.truncate()
            self._snapshots_taken += 1

    def _capture_state(self) -> Dict:
        # No mutation can be concurrent (mutate lock held), so the service's
        # current database snapshot is the consistent point-in-time state.
        views = [
            {"name": name, "params": dict(binding)}
            for name, binding in self._service.materialized_bindings()
        ]
        return {
            "database": self._service.database.to_bytes(allow_pickle=False),
            "programs": {
                name: dict(spec) for name, spec in self._program_specs.items()
            },
            "views": views,
        }

    def _maybe_snapshot(self) -> None:
        if self._wal.record_count >= self._snapshot_every:
            self.snapshot()

    def sync(self) -> None:
        """fsync pending WAL appends (the ``batch`` policy's commit point)."""
        self._wal.sync()

    def begin_drain(self) -> None:
        """Refuse new writes; reads keep flowing (graceful-shutdown step 1)."""
        self._service.begin_drain()

    def close(self) -> None:
        """Drain, optionally snapshot, and release the WAL (idempotent)."""
        with self._mutate_lock:
            if self._closed:
                return
            self._service.begin_drain()
            self._wal.sync()
            if self._snapshot_on_close:
                self._snapshot_store.write(self._capture_state())
                self._wal.truncate()
                self._snapshots_taken += 1
            self._wal.close()
            self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise EvaluationError("the durable service has been closed")

    def __enter__(self) -> "DurableDatalogService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"DurableDatalogService(data_dir={self._data_dir!r}, "
            f"fsync={self._wal.fsync_policy!r}, wal_records={self._wal.record_count}, "
            f"queries={sorted(self._program_specs)})"
        )
