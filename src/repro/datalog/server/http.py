"""Asyncio HTTP/JSON front end for the durable Datalog service (stdlib only).

A deliberately small HTTP/1.1 server on :func:`asyncio.start_server` — no
third-party framework — that exposes the :class:`DurableDatalogService`
surface over JSON, keeps engine work off the event loop (a thread pool runs
every service call), and applies admission control to writes.

Endpoints (JSON request/response unless noted)::

    POST /register      {"name", "source", "transforms"?, "engine"?, "replace"?}
    POST /prepare       {"name"}                      -> {"parameters": [...]}
    POST /execute       {"name", "params"?, "engine"?, "fresh"?}
                                                      -> {"answers": [[...], ...]}
    POST /execute_many  {"name", "bindings": [{...}, ...]}
    POST /add_facts     {"facts": [["pred", [v, ...]], ...]} -> {"added": n}
    POST /remove_facts  {"facts": [...]}              -> {"removed": n}
    POST /materialize   {"name", "params"?}
    POST /dematerialize {"name", "params"?}
    POST /snapshot      {}
    GET  /statistics                                  -> service + WAL counters
    GET  /metrics                                     -> Prometheus text format
    GET  /healthz                                     -> {"status", "draining"}

Deadlines: engine-running endpoints (``/execute``, ``/execute_many``)
honor a per-request deadline — the server's ``request_timeout`` default,
tightened by an optional ``"timeout"`` field in the request body.  A
deadline miss aborts the evaluation at its next cooperative checkpoint
(database, views, and WAL untouched) and answers ``408``; an exhausted
resource budget answers ``503`` with ``Retry-After``.  A client that
disconnects mid-query has its evaluation cancelled the same cooperative
way, so abandoned queries stop consuming executor threads.  Requests
slower than ``slow_query_threshold`` are logged and counted.

Backpressure: at most ``max_pending_writes`` write requests may be queued
or executing at once — beyond that the server answers ``429`` with a
``Retry-After`` header instead of buffering unboundedly (the WAL fsync is
the throughput governor; admission control keeps the queue short so write
latency stays honest).  During drain every write gets ``503``; in-flight
reads still complete, each with ``Connection: close``.

Shutdown (SIGTERM/SIGINT under :func:`run_server`, or
:meth:`DatalogHTTPServer.drain_and_close`): stop admitting writes, close
the listener so no new connection can start, let in-flight requests finish
(each open keep-alive connection is answered at most once more, with
``Connection: close``, so sustained read traffic cannot starve the drain),
sever idle connections, then snapshot + truncate the WAL via
``durable.close()`` — a restart after a graceful stop replays nothing.
"""

from __future__ import annotations

import asyncio
import json
import logging
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Tuple

from repro.datalog.guard import CancellationToken, ResourceBudget
from repro.datalog.server.durable import DurableDatalogService
from repro.datalog.server.metrics import MetricsRegistry, MonotonicityError
from repro.datalog.service import (
    DatalogService,
    QueryNotRegisteredError,
    ServiceDrainingError,
)
from repro.errors import BudgetExceeded, QueryCancelled, QueryTimeout, ReproError

logger = logging.getLogger("repro.datalog.server")

__all__ = ["DatalogHTTPServer", "run_server"]

_MAX_BODY = 16 * 1024 * 1024  # refuse absurd payloads before buffering them
_WRITE_ENDPOINTS = frozenset(
    {"register", "add_facts", "remove_facts", "materialize", "dematerialize", "snapshot"}
)
# Endpoints that run engine evaluation: these get a per-request deadline
# (server default, tightened by a "timeout" field in the body) and a
# cancellation token the disconnect watchdog trips when the client goes
# away mid-query.
_ENGINE_ENDPOINTS = frozenset({"execute", "execute_many"})
# How often the watchdog polls the connection for client departure; engine
# loops observe the token at their next checkpoint, so total reaction time
# is this poll interval plus one checkpoint interval.
_DISCONNECT_POLL = 0.05

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _HttpError(Exception):
    """Short-circuit a request with a specific status + JSON error body."""

    def __init__(self, status: int, message: str, retry_after: Optional[int] = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.retry_after = retry_after


def _sorted_answers(answers) -> list:
    """Frozenset-of-tuples results as a deterministic JSON list-of-lists."""
    return [list(row) for row in sorted(answers, key=repr)]


class DatalogHTTPServer:
    """One listening socket serving a :class:`DurableDatalogService`."""

    def __init__(
        self,
        durable: DurableDatalogService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_pending_writes: int = 64,
        executor_workers: int = 4,
        sync_interval: Optional[float] = None,
        request_timeout: Optional[float] = None,
        slow_query_threshold: float = 1.0,
    ):
        if request_timeout is not None and request_timeout < 0:
            raise ValueError("request_timeout must be non-negative")
        if slow_query_threshold < 0:
            raise ValueError("slow_query_threshold must be non-negative")
        self._durable = durable
        self._host = host
        self._port = port
        self._max_pending_writes = max_pending_writes
        self._sync_interval = sync_interval
        # Default deadline for engine endpoints; a request's own "timeout"
        # field can only tighten it (the tighter of the two wins).
        self._request_timeout = request_timeout
        self._slow_query_threshold = slow_query_threshold
        self._slow_queries = 0
        self.metrics = MetricsRegistry()
        self._executor = ThreadPoolExecutor(
            max_workers=executor_workers, thread_name_prefix="datalog-http"
        )
        # Both counters live on the event-loop thread only — no lock needed.
        self._pending_writes = 0
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._draining = False
        # Open connections' writers; drain severs the ones parked in a
        # keep-alive read, which would otherwise never quiesce on their own.
        self._connections: set = set()
        self._server: Optional[asyncio.base_events.Server] = None
        self._sync_task: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        self._port = self._server.sockets[0].getsockname()[1]
        if self._sync_interval:
            self._sync_task = asyncio.get_running_loop().create_task(
                self._sync_periodically()
            )

    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        """The bound port (resolved after :meth:`start` when 0 was requested)."""
        return self._port

    @property
    def address(self) -> str:
        return f"http://{self._host}:{self._port}"

    async def serve_until(self, stop: asyncio.Event) -> None:
        """Serve until *stop* is set, then drain gracefully."""
        await stop.wait()
        await self.drain_and_close()

    async def drain_and_close(self) -> None:
        """Graceful shutdown: refuse writes, finish in-flight, persist, stop."""
        if self._draining:
            return
        self._draining = True
        self._durable.begin_drain()
        if self._sync_task is not None:
            self._sync_task.cancel()
        # Stop admitting new connections *before* waiting for quiescence —
        # and each existing connection gets at most one more response (the
        # handler closes keep-alive connections while draining) — so
        # sustained read traffic cannot starve the idle event forever.
        if self._server is not None:
            self._server.close()
        # Let requests already admitted (including queued writes, which were
        # WAL-logged-or-rejected atomically) run to completion.
        await self._idle.wait()
        # Connections parked between requests never reach the dispatch path
        # again; sever them so their handlers exit.
        for writer in list(self._connections):
            writer.close()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(self._executor, self._durable.close)
        if self._server is not None:
            await self._server.wait_closed()
        self._executor.shutdown(wait=True)

    async def _sync_periodically(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self._sync_interval)
            await loop.run_in_executor(self._executor, self._durable.sync)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _HttpError as exc:
                    # Malformed framing (bad request line, oversized header
                    # block, unparsable Content-Length): answer properly and
                    # close — the byte stream is no longer trustworthy.
                    status, payload, extra = self._error_response(exc)
                    await self._write_response(writer, status, payload, extra, False)
                    break
                if request is None:
                    break
                method, target, headers, body = request
                keep_alive = headers.get("connection", "keep-alive") != "close"
                status, payload, extra = await self._dispatch(
                    method, target, body, reader, writer
                )
                # During drain each connection gets at most one more
                # response; re-check after dispatch so a drain that started
                # mid-request still cuts the connection over.
                keep_alive = keep_alive and not self._draining
                await self._write_response(writer, status, payload, extra, keep_alive)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        """Parse one HTTP/1.1 request; ``None`` on a cleanly closed connection."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            raise
        except asyncio.LimitOverrunError:
            raise _HttpError(413, "header block too large") from None
        request_line, _, header_block = head.partition(b"\r\n")
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise _HttpError(400, "malformed request line")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        for line in header_block.decode("latin-1").split("\r\n"):
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        raw_length = headers.get("content-length", "0") or "0"
        try:
            length = int(raw_length)
        except ValueError:
            raise _HttpError(400, f"invalid Content-Length: {raw_length!r}") from None
        if length < 0:
            raise _HttpError(400, f"invalid Content-Length: {raw_length!r}")
        if length > _MAX_BODY:
            raise _HttpError(413, "request body too large")
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: bytes,
        extra_headers: Dict[str, str],
        keep_alive: bool,
    ) -> None:
        reason = _STATUS_TEXT.get(status, "Unknown")
        headers = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Length: {len(payload)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        headers.extend(f"{name}: {value}" for name, value in extra_headers.items())
        writer.write(("\r\n".join(headers) + "\r\n\r\n").encode("latin-1") + payload)
        await writer.drain()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def _dispatch(
        self,
        method: str,
        target: str,
        body: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> Tuple[int, bytes, Dict[str, str]]:
        endpoint = target.split("?", 1)[0].lstrip("/") or "healthz"
        loop = asyncio.get_running_loop()
        start = loop.time()
        self._inflight += 1
        self._idle.clear()
        is_write = endpoint in _WRITE_ENDPOINTS
        try:
            try:
                if is_write:
                    self._admit_write()
                    self._pending_writes += 1
                    try:
                        result = await self._run(
                            loop, endpoint, method, body, reader, writer
                        )
                    finally:
                        self._pending_writes -= 1
                else:
                    result = await self._run(
                        loop, endpoint, method, body, reader, writer
                    )
                payload = json.dumps(result).encode("utf-8")
                status, extra = 200, {"Content-Type": "application/json"}
            except _HttpError as exc:
                status, payload, extra = self._error_response(exc)
            except (QueryNotRegisteredError,) as exc:
                status, payload, extra = self._error_response(_HttpError(404, str(exc)))
            # Abort errors before their ReproError base: a deadline is the
            # client's fault (408), an exhausted budget is load shedding
            # (503 + Retry-After invites a retry when the server is less
            # loaded), and a disconnect cancellation gets a best-effort 503
            # nobody is usually left to read.
            except QueryTimeout as exc:
                status, payload, extra = self._error_response(_HttpError(408, str(exc)))
            except BudgetExceeded as exc:
                status, payload, extra = self._error_response(
                    _HttpError(503, str(exc), retry_after=1)
                )
            except QueryCancelled as exc:
                status, payload, extra = self._error_response(_HttpError(503, str(exc)))
            except ServiceDrainingError as exc:
                status, payload, extra = self._error_response(
                    _HttpError(503, str(exc), retry_after=1)
                )
            except MonotonicityError as exc:
                status, payload, extra = self._error_response(_HttpError(500, str(exc)))
            except (ReproError, ValueError, TypeError, KeyError) as exc:
                status, payload, extra = self._error_response(_HttpError(400, str(exc)))
            except Exception as exc:  # noqa: BLE001 - last-resort mapping
                # Anything unmapped is a server bug, but the client still
                # deserves a well-formed 500 and the connection must survive
                # to log it — never let a request kill the handler task.
                logger.exception("unhandled error in /%s", endpoint)
                status, payload, extra = self._error_response(
                    _HttpError(500, f"internal error: {type(exc).__name__}")
                )
            if endpoint == "metrics" and status == 200:
                # /metrics returns text, not JSON: unwrap the rendered string.
                payload = result.encode("utf-8")
                extra = {"Content-Type": "text/plain; version=0.0.4"}
            elapsed = loop.time() - start
            if elapsed >= self._slow_query_threshold:
                self._slow_queries += 1
                logger.warning(
                    "slow request: /%s took %.3fs (status %d, threshold %.3fs)",
                    endpoint,
                    elapsed,
                    status,
                    self._slow_query_threshold,
                )
            self.metrics.observe_request(endpoint, status, elapsed)
            return status, payload, extra
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()

    def _admit_write(self) -> None:
        if self._draining or self._durable.service.draining:
            raise _HttpError(
                503, "server is draining; writes are not admitted", retry_after=5
            )
        if self._pending_writes >= self._max_pending_writes:
            raise _HttpError(
                429,
                f"write queue full ({self._max_pending_writes} pending)",
                retry_after=1,
            )

    def _error_response(self, exc: _HttpError) -> Tuple[int, bytes, Dict[str, str]]:
        payload = json.dumps({"error": exc.message}).encode("utf-8")
        extra = {"Content-Type": "application/json"}
        if exc.retry_after is not None:
            extra["Retry-After"] = str(exc.retry_after)
        return exc.status, payload, extra

    async def _run(self, loop, endpoint: str, method: str, body: bytes, reader, writer):
        handler = getattr(self, f"_endpoint_{endpoint}", None)
        if handler is None:
            raise _HttpError(404, f"no such endpoint: /{endpoint}")
        expected = "GET" if endpoint in ("metrics", "healthz", "statistics") else "POST"
        if method != expected:
            raise _HttpError(405, f"/{endpoint} requires {expected}")
        if expected == "POST":
            try:
                request = json.loads(body.decode("utf-8")) if body else {}
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise _HttpError(400, f"invalid JSON body: {exc}") from None
            if not isinstance(request, dict):
                raise _HttpError(400, "request body must be a JSON object")
        else:
            request = {}
        watchdog = None
        if endpoint in _ENGINE_ENDPOINTS:
            # Reserved keys carry the guard inputs to the handler; the
            # engine observes them at its next cooperative checkpoint, so
            # the evaluation thread unwinds at a safe point with nothing
            # mutated — the pool thread is never killed.
            request["_timeout"] = self._deadline_for(request.pop("timeout", None))
            request["_budget"] = self._budget_for(request.pop("budget", None))
            cancellation = CancellationToken()
            request["_cancellation"] = cancellation
            watchdog = loop.create_task(
                self._watch_disconnect(reader, writer, cancellation)
            )
        try:
            # Every service call — even cheap ones — runs on the pool so a
            # slow engine evaluation can never stall the event loop.
            return await loop.run_in_executor(self._executor, handler, request)
        finally:
            if watchdog is not None:
                watchdog.cancel()

    def _deadline_for(self, requested) -> Optional[float]:
        """The effective per-request timeout: server default, client-tightened."""
        if requested is None:
            return self._request_timeout
        if isinstance(requested, bool) or not isinstance(requested, (int, float)):
            raise _HttpError(400, f"timeout must be a number, got {requested!r}")
        if requested < 0:
            raise _HttpError(400, f"timeout must be non-negative, got {requested!r}")
        if self._request_timeout is None:
            return float(requested)
        return min(float(requested), self._request_timeout)

    @staticmethod
    def _budget_for(raw) -> Optional[ResourceBudget]:
        """A request's ``"budget"`` object as a ResourceBudget (or ``None``)."""
        if raw is None:
            return None
        if not isinstance(raw, dict):
            raise _HttpError(400, "budget must be a JSON object")
        allowed = {"timeout", "max_facts", "max_rounds"}
        unknown = set(raw) - allowed
        if unknown:
            raise _HttpError(
                400, f"unknown budget field(s): {', '.join(sorted(unknown))}"
            )
        try:
            return ResourceBudget(**raw)
        except (TypeError, ValueError) as exc:
            raise _HttpError(400, f"invalid budget: {exc}") from None

    async def _watch_disconnect(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        cancellation: CancellationToken,
    ) -> None:
        """Cancel the engine run when the client departs mid-request.

        Polls the connection while the handler runs on the pool thread;
        a vanished client has no use for the answer, so its query should
        stop consuming the executor.  Cancelled by ``_run`` as soon as the
        handler finishes.
        """
        while not (reader.at_eof() or writer.is_closing()):
            await asyncio.sleep(_DISCONNECT_POLL)
        cancellation.cancel()

    # ------------------------------------------------------------------
    # Endpoints (run on the thread pool)
    # ------------------------------------------------------------------
    @staticmethod
    def _required(request: Dict, key: str):
        try:
            return request[key]
        except KeyError:
            raise _HttpError(400, f"missing required field {key!r}") from None

    @staticmethod
    def _facts_from_json(raw) -> list:
        facts = []
        for item in raw:
            predicate, values = item
            facts.append((str(predicate), tuple(values)))
        return facts

    def _endpoint_register(self, request: Dict) -> Dict:
        self._durable.register_program(
            str(self._required(request, "name")),
            str(self._required(request, "source")),
            transforms=request.get("transforms", ()),
            engine=request.get("engine"),
            replace=bool(request.get("replace", False)),
        )
        return {"ok": True}

    def _endpoint_prepare(self, request: Dict) -> Dict:
        prepared = self._durable.prepare(str(self._required(request, "name")))
        return {"parameters": sorted(prepared.parameters)}

    def _endpoint_execute(self, request: Dict) -> Dict:
        answers = self._durable.execute(
            str(self._required(request, "name")),
            request.get("params") or {},
            engine=request.get("engine"),
            fresh=bool(request.get("fresh", False)),
            timeout=request.get("_timeout"),
            budget=request.get("_budget"),
            cancellation=request.get("_cancellation"),
        )
        return {"answers": _sorted_answers(answers)}

    def _endpoint_execute_many(self, request: Dict) -> Dict:
        results = self._durable.execute_many(
            str(self._required(request, "name")),
            list(self._required(request, "bindings")),
            engine=request.get("engine"),
            timeout=request.get("_timeout"),
            budget=request.get("_budget"),
            cancellation=request.get("_cancellation"),
        )
        return {"answers": [_sorted_answers(answers) for answers in results]}

    def _endpoint_add_facts(self, request: Dict) -> Dict:
        facts = self._facts_from_json(self._required(request, "facts"))
        return {"added": self._durable.add_facts(facts)}

    def _endpoint_remove_facts(self, request: Dict) -> Dict:
        facts = self._facts_from_json(self._required(request, "facts"))
        return {"removed": self._durable.remove_facts(facts)}

    def _endpoint_materialize(self, request: Dict) -> Dict:
        self._durable.materialize(
            str(self._required(request, "name")), request.get("params") or {}
        )
        return {"ok": True}

    def _endpoint_dematerialize(self, request: Dict) -> Dict:
        dropped = self._durable.dematerialize(
            str(self._required(request, "name")), request.get("params") or {}
        )
        return {"dropped": dropped}

    def _endpoint_snapshot(self, request: Dict) -> Dict:
        self._durable.snapshot()
        return {"ok": True}

    def _endpoint_statistics(self, request: Dict) -> Dict:
        return self._durable.statistics()

    def _endpoint_metrics(self, request: Dict) -> str:
        return self.metrics.render(
            self._durable.statistics(),
            monotonic_keys=DatalogService.MONOTONIC_STATISTICS,
            extra_gauges={
                "http_pending_writes": self._pending_writes,
                "http_inflight_requests": self._inflight,
                "http_slow_queries": self._slow_queries,
            },
        )

    def _endpoint_healthz(self, request: Dict) -> Dict:
        return {
            "status": "draining" if self._draining else "ok",
            "draining": self._draining or self._durable.service.draining,
            "port": self._port,
        }


async def _serve(server: DatalogHTTPServer, ready_line: bool) -> None:
    import signal

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover - non-POSIX
            pass
    await server.start()
    if ready_line:
        # Machine-readable readiness line: the load driver and the benchmark
        # harness parse this to learn the bound port.
        print(f"READY {server.host} {server.port}", flush=True)
    await server.serve_until(stop)


def run_server(
    data_dir,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    fsync: str = "always",
    snapshot_every: int = 1024,
    max_pending_writes: int = 64,
    executor_workers: int = 4,
    sync_interval: Optional[float] = None,
    cache_size: int = 256,
    default_engine: str = "seminaive",
    engine_workers: Optional[int] = None,
    request_timeout: Optional[float] = None,
    slow_query_threshold: float = 1.0,
    ready_line: bool = True,
) -> None:
    """Open (recovering) the durable service at *data_dir* and serve it.

    Blocks until SIGTERM/SIGINT, then drains gracefully: refuses new
    writes, completes in-flight requests, snapshots, truncates the WAL,
    and closes the listener.

    ``request_timeout`` bounds every engine-running request (execute,
    execute_many): past the deadline the evaluation aborts at its next
    cooperative checkpoint and the client gets ``408``.  A request body's
    ``"timeout"`` field can tighten (never loosen) the bound.  Requests
    slower than ``slow_query_threshold`` seconds are logged on the
    ``repro.datalog.server`` logger and counted in ``/metrics``.

    ``engine_workers`` (distinct from ``executor_workers``, the size of the
    thread pool running request handlers) sets the *evaluation-level*
    parallelism every engine run uses by default: sharded columnar deltas
    and depth-concurrent strata.  Answers are identical either way.
    """
    durable = DurableDatalogService(
        data_dir,
        fsync=fsync,
        snapshot_every=snapshot_every,
        cache_size=cache_size,
        default_engine=default_engine,
        engine_workers=engine_workers,
    )
    server = DatalogHTTPServer(
        durable,
        host=host,
        port=port,
        max_pending_writes=max_pending_writes,
        executor_workers=executor_workers,
        sync_interval=sync_interval,
        request_timeout=request_timeout,
        slow_query_threshold=slow_query_threshold,
    )
    try:
        asyncio.run(_serve(server, ready_line))
    finally:
        durable.close()
