"""Multi-process load driver for the Datalog HTTP server.

Spawns N client *processes* (not threads — the point is to drive the server
from genuinely concurrent peers over real sockets) that issue a mixed
workload against a running server:

* **reads** — ``/execute`` of a registered reachability query with a random
  ``$src`` binding; a configurable fraction targets the binding that was
  materialized during setup, so the live-view fast path sees traffic too;
* **writes** — single-edge ``/add_facts`` / ``/remove_facts`` batches, which
  exercise the WAL, the epoch bump, and incremental view maintenance.

Each worker records one wall-clock latency sample per request; the parent
merges the samples and reports p50/p95/p99 per operation class plus overall
throughput.  Retryable responses — ``429`` (admission control) and ``503``
(draining or an exhausted budget) — are retried with capped exponential
backoff seeded by the server's ``Retry-After`` hint and counted, so a
backpressured run degrades to lower throughput instead of failing; socket
timeouts are counted separately from hard errors.

This module is the engine behind ``repro load-bench`` and the E13
benchmark; it only needs ``http.client`` and ``multiprocessing``.
"""

from __future__ import annotations

import http.client
import json
import multiprocessing as mp
import queue
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "LoadReport",
    "run_load",
    "setup_workload",
    "workload_edges",
    "WORKLOAD_PROGRAM",
]

#: The fixture query the driver registers: reachability over ``edge`` facts,
#: parameterized by source node.
WORKLOAD_PROGRAM = """\
?reach($src, Y)
reach(X, Y) :- edge(X, Y).
reach(X, Y) :- reach(X, Z), edge(Z, Y).
"""

MATERIALIZED_SOURCE = "n0"

#: Statuses worth retrying: admission control (429) and temporary
#: unavailability (503 — draining, or a shed query).  Everything else is
#: either success or a real error the retry loop must not mask.
RETRYABLE_STATUSES = frozenset({429, 503})

_MAX_ATTEMPTS = 4
_BACKOFF_BASE = 0.05
_BACKOFF_CAP = 0.25


def _backoff_delay(attempt: int, retry_after, rng: random.Random) -> float:
    """The sleep before retry *attempt* (0-based): capped exponential + jitter.

    The server's ``Retry-After`` hint overrides the exponential schedule
    when present (still capped); the jitter spreads concurrent workers so
    they do not retry in lockstep against the same full queue.
    """
    if retry_after:
        try:
            base = float(retry_after)
        except ValueError:
            base = _BACKOFF_BASE * (2**attempt)
    else:
        base = _BACKOFF_BASE * (2**attempt)
    return min(base, _BACKOFF_CAP) * (0.5 + rng.random() / 2)


class _Client:
    """A keep-alive JSON client over one ``http.client`` connection."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self._conn = http.client.HTTPConnection(host, port, timeout=timeout)

    def request(self, method: str, path: str, body: Optional[dict] = None):
        payload = json.dumps(body).encode("utf-8") if body is not None else b""
        headers = {"Content-Type": "application/json"} if body is not None else {}
        try:
            self._conn.request(method, path, payload, headers)
            response = self._conn.getresponse()
            data = response.read()
        except (http.client.HTTPException, ConnectionError, OSError):
            # One reconnect per failure: the server may have dropped an idle
            # keep-alive connection.
            self._conn.close()
            self._conn.request(method, path, payload, headers)
            response = self._conn.getresponse()
            data = response.read()
        retry_after = response.getheader("Retry-After")
        return response.status, data, retry_after

    def post(self, path: str, body: dict):
        return self.request("POST", path, body)

    def close(self) -> None:
        self._conn.close()


def workload_edges(nodes: int = 24, seed: int = 7) -> List[List[str]]:
    """The fixture graph: a ring over ``nodes`` plus ``nodes`` random chords."""
    rng = random.Random(seed)
    edges = [[f"n{i}", f"n{(i + 1) % nodes}"] for i in range(nodes)]
    edges += [
        [f"n{rng.randrange(nodes)}", f"n{rng.randrange(nodes)}"]
        for _ in range(nodes)
    ]
    return edges


def setup_workload(host: str, port: int, *, nodes: int = 24, seed: int = 7) -> None:
    """Register the fixture program, load a graph, materialize one binding."""
    client = _Client(host, port)
    try:
        status, data, _ = client.post(
            "/register",
            {"name": "reach", "source": WORKLOAD_PROGRAM, "replace": True},
        )
        if status != 200:
            raise RuntimeError(f"workload setup failed: register -> {status} {data!r}")
        edges = workload_edges(nodes, seed)
        status, data, _ = client.post(
            "/add_facts", {"facts": [["edge", edge] for edge in edges]}
        )
        if status != 200:
            raise RuntimeError(f"workload setup failed: add_facts -> {status} {data!r}")
        status, data, _ = client.post(
            "/materialize", {"name": "reach", "params": {"src": MATERIALIZED_SOURCE}}
        )
        if status != 200:
            raise RuntimeError(
                f"workload setup failed: materialize -> {status} {data!r}"
            )
    finally:
        client.close()


def _worker(
    host: str,
    port: int,
    requests: int,
    read_ratio: float,
    materialized_ratio: float,
    nodes: int,
    seed: int,
    results: "mp.Queue",
) -> None:
    """One client process: issue *requests* mixed operations, report samples."""
    rng = random.Random(seed)
    client = _Client(host, port)
    reads: List[float] = []
    writes: List[float] = []
    errors = 0
    rejected = 0
    retries = 0
    timeouts = 0
    try:
        for i in range(requests):
            if rng.random() < read_ratio:
                if rng.random() < materialized_ratio:
                    source = MATERIALIZED_SOURCE
                else:
                    source = f"n{rng.randrange(nodes)}"
                path, body, bucket = (
                    "/execute",
                    {"name": "reach", "params": {"src": source}},
                    reads,
                )
            else:
                edge = [f"n{rng.randrange(nodes)}", f"n{rng.randrange(nodes)}"]
                endpoint = "/add_facts" if rng.random() < 0.7 else "/remove_facts"
                path, body, bucket = (endpoint, {"facts": [["edge", edge]]}, writes)
            for attempt in range(_MAX_ATTEMPTS):
                start = time.perf_counter()
                try:
                    status, _data, retry_after = client.post(path, body)
                except TimeoutError:
                    # The socket deadline fired (both the original request
                    # and the reconnect retry): the sample is abandoned, not
                    # an error — the server may still answer eventually.
                    timeouts += 1
                    break
                elapsed = time.perf_counter() - start
                if status in RETRYABLE_STATUSES:
                    if status == 429:
                        rejected += 1
                    retries += 1
                    time.sleep(_backoff_delay(attempt, retry_after, rng))
                    continue
                bucket.append(elapsed)
                if status != 200:
                    errors += 1
                break
            else:
                errors += 1
    finally:
        client.close()
        results.put(
            {
                "reads": reads,
                "writes": writes,
                "errors": errors,
                "rejected": rejected,
                "retries": retries,
                "timeouts": timeouts,
            }
        )


def percentile(samples: List[float], q: float) -> float:
    """The *q*-quantile (0..1) of *samples* by nearest-rank; 0.0 when empty."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[index]


@dataclass
class LoadReport:
    """Merged result of one load run (all latencies in seconds)."""

    processes: int
    requests_per_process: int
    duration: float
    read_latencies: List[float] = field(repr=False)
    write_latencies: List[float] = field(repr=False)
    errors: int = 0
    rejected: int = 0
    #: Retry attempts made against retryable statuses (429 + 503).
    retries: int = 0
    #: Requests abandoned because the client socket deadline fired.
    timeouts: int = 0

    @property
    def total_requests(self) -> int:
        return len(self.read_latencies) + len(self.write_latencies)

    @property
    def requests_per_second(self) -> float:
        return self.total_requests / self.duration if self.duration > 0 else 0.0

    def percentiles(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for kind, samples in (
            ("read", self.read_latencies),
            ("write", self.write_latencies),
        ):
            for label, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
                out[f"{kind}_{label}"] = percentile(samples, q)
        return out

    def as_dict(self) -> Dict:
        summary = {
            "processes": self.processes,
            "requests_per_process": self.requests_per_process,
            "total_requests": self.total_requests,
            "duration_seconds": self.duration,
            "requests_per_second": self.requests_per_second,
            "errors": self.errors,
            "rejected_429": self.rejected,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "reads": len(self.read_latencies),
            "writes": len(self.write_latencies),
        }
        summary.update(self.percentiles())
        return summary

    def __str__(self) -> str:
        p = self.percentiles()
        return (
            f"{self.processes} process(es) x {self.requests_per_process} requests: "
            f"{self.total_requests} ok in {self.duration:.2f}s "
            f"({self.requests_per_second:.0f} req/s), "
            f"read p50/p95/p99 = {p['read_p50'] * 1e3:.2f}/"
            f"{p['read_p95'] * 1e3:.2f}/{p['read_p99'] * 1e3:.2f} ms, "
            f"write p50/p95/p99 = {p['write_p50'] * 1e3:.2f}/"
            f"{p['write_p95'] * 1e3:.2f}/{p['write_p99'] * 1e3:.2f} ms, "
            f"errors={self.errors}, 429s={self.rejected}, "
            f"retries={self.retries}, timeouts={self.timeouts}"
        )


def run_load(
    host: str,
    port: int,
    *,
    processes: int = 2,
    requests_per_process: int = 200,
    read_ratio: float = 0.9,
    materialized_ratio: float = 0.5,
    nodes: int = 24,
    seed: int = 1987,
    setup: bool = True,
    worker_timeout: float = 120.0,
) -> LoadReport:
    """Drive a running server with *processes* concurrent client processes.

    With ``setup=True`` (default) the fixture workload is installed first;
    pass ``False`` to drive a server whose state is already prepared.
    Worker processes are real OS processes connected over real sockets, so
    the measured latencies include the full network + parse + dispatch path.
    """
    if processes < 1:
        raise ValueError("processes must be >= 1")
    if setup:
        setup_workload(host, port, nodes=nodes, seed=seed)
    # fork (where available) keeps workers cheap and avoids re-importing
    # __main__, which spawn requires to be a real file.
    methods = mp.get_all_start_methods()
    context = mp.get_context("fork" if "fork" in methods else "spawn")
    results: "mp.Queue" = context.Queue()
    workers = [
        context.Process(
            target=_worker,
            args=(
                host,
                port,
                requests_per_process,
                read_ratio,
                materialized_ratio,
                nodes,
                seed + 101 * (index + 1),
                results,
            ),
        )
        for index in range(processes)
    ]
    start = time.perf_counter()
    for worker in workers:
        worker.start()
    merged: List[Dict] = []
    try:
        for _ in workers:
            # Drain results before join: a worker blocks on queue flush
            # otherwise.  The timeout turns a wedged worker into an error
            # instead of a hung driver.
            merged.append(results.get(timeout=worker_timeout))
    except queue.Empty:
        for worker in workers:
            if worker.is_alive():
                worker.terminate()
        raise RuntimeError(
            f"load worker produced no result within {worker_timeout}s "
            f"({len(merged)}/{len(workers)} reported)"
        ) from None
    for worker in workers:
        worker.join()
    duration = time.perf_counter() - start
    return LoadReport(
        processes=processes,
        requests_per_process=requests_per_process,
        duration=duration,
        read_latencies=[s for part in merged for s in part["reads"]],
        write_latencies=[s for part in merged for s in part["writes"]],
        errors=sum(part["errors"] for part in merged),
        rejected=sum(part["rejected"] for part in merged),
        retries=sum(part.get("retries", 0) for part in merged),
        timeouts=sum(part.get("timeouts", 0) for part in merged),
    )
