"""Atomic point-in-time snapshots of a durable service's full state.

A snapshot bounds recovery time: instead of replaying every write since the
beginning of time, a restarted server loads the latest snapshot and replays
only the WAL records appended after it.  One snapshot captures

* the EDB (``Database.to_bytes`` — the compact codec with the pickle
  escape hatch disabled in both directions, so loading a tampered
  snapshot can never execute code; a corrupt or unreadable file just
  loads as ``None``),
* the registered programs (source text + transform names + engine, exactly
  what re-registration needs), and
* the materialized bindings, so recovery rebuilds every live view through
  the incremental-maintenance path.

Write protocol: encode, checksum, write to a temp file in the same
directory, fsync, ``os.replace`` over the real name, fsync the directory.
A crash at any point leaves either the old snapshot or the new one —
never a torn file.  Loading verifies magic + CRC and returns ``None`` for
a missing or corrupt snapshot (recovery then starts from an empty state
and the WAL).
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Optional

from repro.datalog.database import decode_obj, encode_obj

_MAGIC = b"RPSNAP1\n"
_CRC = struct.Struct(">I")

SNAPSHOT_NAME = "snapshot.bin"


class SnapshotStore:
    """Reads and atomically writes the single-snapshot file of a data dir."""

    def __init__(self, data_dir, *, faults=None):
        self._directory = os.fspath(data_dir)
        self._path = os.path.join(self._directory, SNAPSHOT_NAME)
        # Optional ScriptedFaults plan (repro.datalog.server.faults); every
        # write-path file op consults its seam first.  All scripted failures
        # strike before `os.replace`, i.e. before the old snapshot is
        # touched — exactly the window the atomic protocol protects.
        self._faults = faults

    @property
    def path(self) -> str:
        return self._path

    def exists(self) -> bool:
        return os.path.exists(self._path)

    def write(self, state: dict) -> None:
        """Atomically persist *state* (a plain dict in codec-friendly types).

        Any failure — real or injected — before ``os.replace`` leaves the
        previous snapshot untouched; a stale temp file is harmless (the
        next write overwrites it, and loads never look at it).
        """
        payload = encode_obj(state, allow_pickle=False)
        blob = _MAGIC + _CRC.pack(zlib.crc32(payload)) + payload
        temp_path = self._path + ".tmp"
        data = blob
        if self._faults is not None:
            from repro.datalog.server.faults import PartialWrite

            try:
                data = self._faults.filter_write("snapshot.write", blob)
            except PartialWrite as partial:
                # Land the torn prefix in the temp file — a crash mid-write —
                # then surface the error.  The live snapshot is untouched.
                with open(temp_path, "wb") as handle:
                    handle.write(partial.torn)
                raise partial.error from None
        with open(temp_path, "wb") as handle:
            handle.write(data)
            handle.flush()
            if self._faults is not None:
                self._faults.check("snapshot.fsync")
            os.fsync(handle.fileno())
        if self._faults is not None:
            self._faults.check("snapshot.replace")
        os.replace(temp_path, self._path)
        self._fsync_directory()

    def load(self) -> Optional[dict]:
        """The latest intact snapshot state, or ``None`` (missing/corrupt)."""
        try:
            with open(self._path, "rb") as handle:
                blob = handle.read()
        except FileNotFoundError:
            return None
        if not blob.startswith(_MAGIC) or len(blob) < len(_MAGIC) + _CRC.size:
            return None
        (checksum,) = _CRC.unpack_from(blob, len(_MAGIC))
        payload = blob[len(_MAGIC) + _CRC.size :]
        if zlib.crc32(payload) != checksum:
            return None
        try:
            state = decode_obj(payload, allow_pickle=False)
        except Exception:
            return None
        return state if isinstance(state, dict) else None

    def _fsync_directory(self) -> None:
        """Persist the rename itself (POSIX requires fsyncing the directory)."""
        try:
            fd = os.open(self._directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir fds
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
