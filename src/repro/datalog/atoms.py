"""Atoms: predicate symbols applied to vectors of terms."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Tuple

from repro.datalog.terms import Aggregate, Constant, Parameter, Term, Variable, make_term


@dataclass(frozen=True)
class Atom:
    """An atom ``r(u1, ..., ua)``.

    ``predicate`` is the predicate symbol, ``terms`` the argument vector.
    Atoms are immutable and hashable, so ground atoms double as facts and
    members of Herbrand bases.
    """

    predicate: str
    terms: Tuple[Term, ...]

    def __init__(self, predicate: str, terms: Iterable = ()):  # noqa: D401
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(self, "terms", tuple(make_term(t) for t in terms))

    @property
    def arity(self) -> int:
        """Number of arguments of the atom."""
        return len(self.terms)

    def is_ground(self) -> bool:
        """Return ``True`` if the atom contains no variables."""
        return all(isinstance(t, Constant) for t in self.terms)

    def variables(self) -> Tuple[Variable, ...]:
        """Variables occurring in the atom, in order of first occurrence.

        The variable inside an :class:`~repro.datalog.terms.Aggregate` head
        term counts as an occurrence: safety then falls out of the ordinary
        head-variable check (the aggregated variable must be bound by a
        positive body atom).
        """
        seen = []
        for term in self.terms:
            if isinstance(term, Aggregate):
                term = term.variable
            if isinstance(term, Variable) and term not in seen:
                seen.append(term)
        return tuple(seen)

    def constants(self) -> Tuple[Constant, ...]:
        """Constants occurring in the atom, in order of first occurrence."""
        seen = []
        for term in self.terms:
            if isinstance(term, Constant) and term not in seen:
                seen.append(term)
        return tuple(seen)

    def parameters(self) -> Tuple[Parameter, ...]:
        """Parameters occurring in the atom, in order of first occurrence."""
        seen = []
        for term in self.terms:
            if isinstance(term, Parameter) and term not in seen:
                seen.append(term)
        return tuple(seen)

    def bind_parameters(self, bindings: Mapping[str, object]) -> "Atom":
        """Replace each parameter with the constant bound to its name.

        Parameters absent from *bindings* are left in place, so partial
        binding composes; values are wrapped in :class:`Constant` unless
        they already are terms.
        """
        if not any(isinstance(t, Parameter) for t in self.terms):
            return self

        def bind(term: Term) -> Term:
            if isinstance(term, Parameter) and term.name in bindings:
                value = bindings[term.name]
                return value if isinstance(value, Constant) else Constant(value)
            return term

        return type(self)(self.predicate, tuple(bind(t) for t in self.terms))

    def substitute(self, substitution: Mapping[Variable, Term]) -> "Atom":
        """Apply a substitution (a mapping from variables to terms)."""

        def apply(term: Term) -> Term:
            if isinstance(term, Variable):
                return substitution.get(term, term)
            if isinstance(term, Aggregate):
                return Aggregate(term.op, substitution.get(term.variable, term.variable))
            return term

        return type(self)(self.predicate, tuple(apply(t) for t in self.terms))

    def rename_predicate(self, new_name: str) -> "Atom":
        """Return a copy of the atom with a different predicate symbol."""
        return type(self)(new_name, self.terms)

    def as_fact_tuple(self) -> Tuple:
        """Return the tuple of constant values of a ground atom."""
        if not self.is_ground():
            raise ValueError(f"atom {self} is not ground")
        return tuple(t.value for t in self.terms)

    def __str__(self) -> str:
        if not self.terms:
            return self.predicate
        args = ", ".join(str(t) for t in self.terms)
        return f"{self.predicate}({args})"

    def __repr__(self) -> str:
        return f"Atom({self.predicate!r}, {self.terms!r})"


class NegatedAtom(Atom):
    """A negated body literal ``not r(u1, ..., ua)``.

    Structurally an :class:`Atom` (same predicate/terms access, so the
    planner, kernels, and matchers can treat it uniformly), but a distinct
    type: the dataclass-generated equality is class-sensitive, so
    ``NegatedAtom("p", ts) != Atom("p", ts)``, and transforms that rebuild
    atoms via ``type(self)(...)`` preserve the negation.  Negated literals
    are only legal in rule bodies; under stratified semantics they are
    evaluated as complement against the fully closed lower strata.
    """

    def __str__(self) -> str:
        return f"not {super().__str__()}"

    def __repr__(self) -> str:
        return f"NegatedAtom({self.predicate!r}, {self.terms!r})"


def ground_atom(predicate: str, values: Iterable) -> Atom:
    """Build a ground atom from raw constant values."""
    return Atom(predicate, tuple(Constant(v) for v in values))
