"""The Datalog substrate: syntax, databases, evaluation, and transformations."""

from repro.datalog.atoms import Atom, ground_atom
from repro.datalog.database import Database
from repro.datalog.engine import (
    DerivationAnalyzer,
    DerivationTree,
    Engine,
    EvaluationResult,
    EvaluationStatistics,
    Planner,
    ProgramPlan,
    TopDownEvaluator,
    available_engines,
    get_engine,
    register_engine,
    select_answers,
)
from repro.datalog.guard import (
    CancellationToken,
    ExecutionGuard,
    ResourceBudget,
    build_guard,
)
from repro.datalog.incremental import ApplyReport, MaintenanceStatistics, MaterializedView
from repro.datalog.parser import parse_atom, parse_facts, parse_program, parse_rule, parse_term
from repro.datalog.prepared import AnswerCursor, BoundQuery, PreparedQuery
from repro.datalog.pretty import format_atom, format_database, format_program, format_rule
from repro.datalog.program import Program
from repro.datalog.rules import Rule, fact
from repro.datalog.service import (
    DatalogService,
    QueryNotRegisteredError,
    ServiceDrainingError,
)
from repro.datalog.session import QuerySession
from repro.datalog.terms import Constant, Parameter, Term, Variable

__all__ = [
    "AnswerCursor",
    "ApplyReport",
    "Atom",
    "BoundQuery",
    "CancellationToken",
    "Constant",
    "Database",
    "DatalogService",
    "ExecutionGuard",
    "MaintenanceStatistics",
    "MaterializedView",
    "DerivationAnalyzer",
    "DerivationTree",
    "Engine",
    "EvaluationResult",
    "EvaluationStatistics",
    "Parameter",
    "Planner",
    "PreparedQuery",
    "Program",
    "ProgramPlan",
    "QueryNotRegisteredError",
    "QuerySession",
    "ResourceBudget",
    "Rule",
    "ServiceDrainingError",
    "Term",
    "TopDownEvaluator",
    "Variable",
    "available_engines",
    "build_guard",
    "fact",
    "format_atom",
    "format_database",
    "format_program",
    "format_rule",
    "get_engine",
    "ground_atom",
    "parse_atom",
    "parse_facts",
    "parse_program",
    "parse_rule",
    "parse_term",
    "register_engine",
    "select_answers",
]
