"""Prepared parameterized queries: compile the rewrite once, execute per binding.

The point of the paper's machinery — adornment, magic sets, constant
propagation — is that what can be pushed into a recursive program depends
on the goal's *binding pattern*, never on the concrete constant.  A query
surface that bakes constants into the :class:`~repro.datalog.program.Program`
therefore re-runs rectify/adorn/magic and re-plans for every new constant,
throwing away exactly the work those rewrites exist to amortize.  This
module is the redesign:

* a **template** program carries :class:`~repro.datalog.terms.Parameter`
  terms (``?anc($who, Y)``) in place of constants;
* :class:`PreparedQuery` (built by
  :meth:`repro.datalog.session.QuerySession.prepare`) runs the transform
  pipeline, compiles parameters into deferred ``__param_*`` seed rules
  (:mod:`repro.datalog.transforms.parameters`), and compiles the
  join/stratification plan — all exactly once per binding pattern;
* :meth:`PreparedQuery.bind` / :meth:`PreparedQuery.execute` then only
  append one ground seed fact per parameter and run the engine over an
  O(1) copy-on-write :meth:`~repro.datalog.database.Database.overlay` of
  the EDB — the per-execution cost is the fixpoint itself, nothing else;
* :meth:`PreparedQuery.execute_many` batches several bindings through a
  *single* fixpoint when the compiled form allows it (magic-style rewrites
  whose guards only restrict, and plain programs), selecting each
  binding's answers from the shared model afterwards.

Thread safety: a prepared query is immutable after construction except for
its lazily (re)compiled plan, which is guarded by a lock; concurrent
``execute`` calls share the plan and the base database but each get their
own overlay working set.  :class:`repro.datalog.service.DatalogService`
builds the full traffic-facing layer on top.
"""

from __future__ import annotations

import threading
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.datalog.atoms import Atom
from repro.datalog.database import Database
from repro.datalog.engine.base import EvaluationResult
from repro.datalog.engine.planner import ProgramPlan, compile_program_plan
from repro.datalog.engine.registry import get_engine
from repro.datalog.guard import build_guard
from repro.datalog.program import Program
from repro.datalog.terms import Constant, Parameter
from repro.datalog.transforms.parameters import (
    is_parameter_relation,
    parameter_seed_rules,
    parameterize_rules,
)
from repro.datalog.transforms.pipeline import (
    FunctionTransform,
    Pipeline,
    PipelineOutcome,
    Transform,
)
from repro.errors import EvaluationError


def normalize_binding_value(name: str, value: object):
    """A parameter binding as the raw domain value the database stores.

    Callers may pass a plain value or a wrapped :class:`Constant`; both the
    seed facts and the goal selection compare against the *unwrapped* domain
    values in database tuples, so normalisation happens once here.  Unhashable
    values are rejected (they could never occur in a relation).
    """
    if isinstance(value, Constant):
        value = value.value
    try:
        hash(value)
    except TypeError:
        raise EvaluationError(
            f"parameter ${name} must be bound to a hashable constant, "
            f"got {type(value).__name__}"
        ) from None
    return value


def resolve_prepared_engine(name: str) -> Tuple[str, Tuple[Transform, ...]]:
    """Fold rewrite engines into pipeline stages; return (base engine, stages).

    Registry engines like ``magic`` rewrite the program on every call —
    the antithesis of preparing.  For a prepared query the rewrite belongs
    in the (once-run) pipeline, so ``prepare(engine="magic")`` resolves to
    the ``seminaive`` delegate plus a ``magic`` pipeline stage.
    """
    transforms: List[Transform] = []
    engine = get_engine(name)
    resolved = name
    seen = {name}
    while getattr(engine, "transform", None) is not None:
        transforms.append(FunctionTransform(engine.name, engine.transform))
        delegate = getattr(engine, "delegate", None)
        if not isinstance(delegate, str) or delegate in seen:
            raise EvaluationError(
                f"cannot resolve rewrite engine {name!r} to a base engine"
            )
        seen.add(delegate)
        resolved = delegate
        engine = get_engine(delegate)
    return resolved, tuple(transforms)


class AnswerCursor:
    """A streaming, DB-API-flavoured view over one execution's answers.

    Answers are materialised by the engine as a set; the cursor fixes a
    stable (sorted) order and lets heavy-traffic clients page through large
    answer sets — ``fetchone`` / ``fetchmany`` / ``fetchall`` or plain
    iteration — without every caller re-sorting or copying the whole set.
    """

    def __init__(self, answers: FrozenSet[Tuple], batch_size: int = 256):
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self._rows: List[Tuple] = sorted(answers, key=repr)
        self._batch_size = batch_size
        self._position = 0
        self._closed = False

    @property
    def rowcount(self) -> int:
        """Total number of answers behind the cursor."""
        return len(self._rows)

    def _check_open(self) -> None:
        if self._closed:
            raise EvaluationError("cursor is closed")

    def fetchone(self) -> Optional[Tuple]:
        """The next answer, or ``None`` when exhausted."""
        self._check_open()
        if self._position >= len(self._rows):
            return None
        row = self._rows[self._position]
        self._position += 1
        return row

    def fetchmany(self, size: Optional[int] = None) -> List[Tuple]:
        """The next batch (default: the cursor's batch size); empty when done."""
        self._check_open()
        count = self._batch_size if size is None else size
        if count < 0:
            raise ValueError("size must be non-negative")
        batch = self._rows[self._position : self._position + count]
        self._position += len(batch)
        return batch

    def fetchall(self) -> List[Tuple]:
        """All remaining answers."""
        self._check_open()
        rest = self._rows[self._position :]
        self._position = len(self._rows)
        return rest

    def close(self) -> None:
        """Release the row buffer; further fetches raise."""
        self._closed = True
        self._rows = []

    def __iter__(self) -> "AnswerCursor":
        return self

    def __next__(self) -> Tuple:
        row = self.fetchone()
        if row is None:
            raise StopIteration
        return row

    def __repr__(self) -> str:
        return f"AnswerCursor(rows={len(self._rows)}, position={self._position})"


class BoundQuery:
    """A prepared query with every parameter bound to a constant."""

    def __init__(self, prepared: "PreparedQuery", bindings: Mapping[str, object]):
        self._prepared = prepared
        self._bindings = dict(bindings)
        self._goal = prepared.goal_template.bind_parameters(self._bindings)

    @property
    def bindings(self) -> Dict[str, object]:
        """The parameter values this query runs with (a copy)."""
        return dict(self._bindings)

    @property
    def goal(self) -> Atom:
        """The fully bound goal atom used for answer selection."""
        return self._goal

    def execute(
        self,
        *,
        engine: Optional[str] = None,
        max_iterations: Optional[int] = None,
        timeout=None,
        budget=None,
        cancellation=None,
        workers: Optional[int] = None,
    ) -> EvaluationResult:
        """Run the engine with this binding's seed facts; return the full result."""
        return self._prepared._execute_bound(
            self._bindings,
            self._goal,
            engine=engine,
            max_iterations=max_iterations,
            timeout=timeout,
            budget=budget,
            cancellation=cancellation,
            workers=workers,
        )

    def answers(
        self,
        *,
        engine: Optional[str] = None,
        max_iterations: Optional[int] = None,
        timeout=None,
        budget=None,
        cancellation=None,
        workers: Optional[int] = None,
    ) -> FrozenSet[Tuple]:
        """Just the goal answers (the common traffic path)."""
        return self.execute(
            engine=engine,
            max_iterations=max_iterations,
            timeout=timeout,
            budget=budget,
            cancellation=cancellation,
            workers=workers,
        ).answers()

    def cursor(
        self,
        *,
        engine: Optional[str] = None,
        max_iterations: Optional[int] = None,
        batch_size: int = 256,
        timeout=None,
        budget=None,
        cancellation=None,
        workers: Optional[int] = None,
    ) -> AnswerCursor:
        """A streaming cursor over this binding's answers."""
        return AnswerCursor(
            self.answers(
                engine=engine,
                max_iterations=max_iterations,
                timeout=timeout,
                budget=budget,
                cancellation=cancellation,
                workers=workers,
            ),
            batch_size,
        )

    def __repr__(self) -> str:
        return f"BoundQuery(goal={self._goal}, bindings={self._bindings!r})"


class PreparedQuery:
    """A parameterized query compiled once per binding pattern.

    Construction runs the transform pipeline over the template program,
    compiles remaining parameters into deferred ``__param_*`` seed rules,
    validates the result, and compiles the join/stratification plan.  After
    that, every :meth:`execute` only (a) appends one ground seed fact per
    parameter and (b) runs the engine over a copy-on-write overlay of the
    database — the rewrite and planning work is fully amortized.
    """

    def __init__(
        self,
        program: Program,
        database: Database,
        pipeline: Optional[Pipeline] = None,
        *,
        default_engine: str = "seminaive",
    ):
        self._template = program
        self._database = database
        self._pipeline = pipeline if pipeline is not None else Pipeline()
        self._default_engine, folded = resolve_prepared_engine(default_engine)
        if folded:
            self._pipeline = self._pipeline.then(*folded)
        self._outcome: PipelineOutcome = self._pipeline.apply(program)
        self._runtime: Program = parameterize_rules(self._outcome.program)
        self._runtime.validate()
        if self._runtime.goal is None:
            raise EvaluationError("prepared queries require a goal")
        declared = [parameter.name for parameter in program.parameters()]
        for parameter in self._outcome.program.parameters():
            if parameter.name not in declared:
                declared.append(parameter.name)
        self._parameter_names: Tuple[str, ...] = tuple(declared)
        self._lock = threading.Lock()
        # (plan, database version) published as ONE tuple: concurrent
        # executors read it lock-free (a single attribute load is atomic
        # under the GIL), and the pair can never be observed torn the way
        # two separate attributes could.
        self._plan_state: Optional[Tuple[ProgramPlan, int]] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def parameters(self) -> Tuple[str, ...]:
        """Names the caller must bind, in order of first occurrence."""
        return self._parameter_names

    @property
    def database(self) -> Database:
        return self._database

    @property
    def program(self) -> Program:
        """The original template program (parameters intact)."""
        return self._template

    @property
    def runtime_program(self) -> Program:
        """The compiled program engines execute (rules parameter-free)."""
        return self._runtime

    @property
    def goal_template(self) -> Atom:
        """The transformed goal; its parameters are bound per execution."""
        goal = self._runtime.goal
        assert goal is not None  # checked in __init__
        return goal

    @property
    def provenance(self) -> PipelineOutcome:
        """Per-stage provenance of the (once-run) transform pipeline."""
        return self._outcome

    @property
    def default_engine(self) -> str:
        return self._default_engine

    #: Pipeline stages known to preserve per-binding answers under a shared
    #: multi-seed fixpoint.  ``magic`` qualifies because its guards only
    #: *restrict* the original rules: dropping every ``magic_*`` guard gives
    #: back a superset program, so any fact derived under a union of seeds is
    #: a true fact, and each binding's seed keeps its own answers complete.
    #: ``rectify``/``adorn`` are parameter-independent renamings.
    SHARED_SAFE_STAGES = frozenset({"magic", "rectify", "adorn"})

    @property
    def binding_pattern(self) -> str:
        """The goal's ``b``/``f`` pattern this query was compiled for."""
        from repro.datalog.transforms.adornment import adornment_of_atom

        if self._template.goal is None:
            return ""
        return adornment_of_atom(self._template.goal, set())

    @property
    def supports_shared_execution(self) -> bool:
        """Whether :meth:`execute_many` may share one fixpoint across bindings.

        Sharing is only used when it is provably sound, which requires all of:

        * the template's parameters live in the *goal* only (a parameterized
          fact or rule body could let one binding's seeds fire derivations
          that leak into another binding's answers);
        * every parameter survives into the transformed goal, so each
          binding's answers can be selected back out of the shared model;
        * every pipeline stage is in :data:`SHARED_SAFE_STAGES` — for those
          rewrites the ``__param``-fed predicates act purely as guards that
          restrict the original rules, so a union of seeds derives only true
          facts and per-binding selection recovers exactly the solo answers;
        * every rule mentioning a ``__param_*`` relation is a pure seed rule
          (its body is nothing but ``__param_*`` atoms).

        Anything else — constant propagation or monadic rewrites (they
        project the parameter away), user-supplied transforms, parameterized
        rule templates — falls back to per-binding execution.
        """
        if any(rule.parameters() for rule in self._template.rules):
            return False
        goal_parameters = {parameter.name for parameter in self.goal_template.parameters()}
        if set(self._parameter_names) != goal_parameters:
            return False
        if any(
            stage.name not in self.SHARED_SAFE_STAGES for stage in self._outcome.stages
        ):
            return False
        for rule in self._runtime.rules:
            if any(is_parameter_relation(atom.predicate) for atom in rule.body):
                if not all(is_parameter_relation(atom.predicate) for atom in rule.body):
                    return False
        return True

    def plan(self) -> ProgramPlan:
        """The compiled plan (recompiled if the database has since mutated).

        Plans are correct regardless of data — recompilation only refreshes
        the cardinality estimates the join order is based on.

        Double-checked: the hot path (every execute of a warm prepared
        query) is one lock-free read of the published ``(plan, version)``
        pair; only a cold or stale plan takes the lock, and the re-check
        inside it guarantees each version's plan compiles exactly once no
        matter how many threads arrive cold — the amortized-once contract
        of the executions counter.
        """
        version = self._database.version
        state = self._plan_state
        if state is not None and state[1] == version:
            return state[0]
        with self._lock:
            state = self._plan_state
            if state is None or state[1] != version:
                state = (compile_program_plan(self._runtime, self._database), version)
                self._plan_state = state
            return state[0]

    def describe(self) -> str:
        """Human-readable account: pipeline provenance, parameters, plan."""
        lines = [
            f"prepared query: goal {self.goal_template}, "
            f"binding pattern {self.binding_pattern or '(none)'}",
            "parameters: "
            + (", ".join(f"${name}" for name in self._parameter_names) or "(none)"),
            "shared execution: "
            + ("supported" if self.supports_shared_execution else "per-binding"),
            self._outcome.describe(),
            self.plan().describe(),
        ]
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Binding and execution
    # ------------------------------------------------------------------
    def _check_bindings(self, bindings: Mapping[str, object]) -> Dict[str, object]:
        expected = set(self._parameter_names)
        provided = set(bindings)
        if provided != expected:
            missing = ", ".join(f"${name}" for name in sorted(expected - provided))
            extra = ", ".join(f"${name}" for name in sorted(provided - expected))
            detail = "; ".join(
                part
                for part in (
                    f"missing {missing}" if missing else "",
                    f"unknown {extra}" if extra else "",
                )
                if part
            )
            raise EvaluationError(f"parameter bindings do not match the query: {detail}")
        checked: Dict[str, object] = {}
        for name, value in bindings.items():
            checked[name] = normalize_binding_value(name, value)
        return checked

    def bind(self, **bindings) -> BoundQuery:
        """Bind every parameter; returns an executable :class:`BoundQuery`."""
        return BoundQuery(self, self._check_bindings(bindings))

    def execute(
        self,
        bindings: Optional[Mapping[str, object]] = None,
        *,
        engine: Optional[str] = None,
        max_iterations: Optional[int] = None,
        timeout=None,
        budget=None,
        cancellation=None,
        workers: Optional[int] = None,
        **kw_bindings,
    ) -> EvaluationResult:
        """``bind(...)`` + run in one call; bindings may be a mapping or kwargs."""
        merged = dict(bindings or {})
        merged.update(kw_bindings)
        return self.bind(**merged).execute(
            engine=engine,
            max_iterations=max_iterations,
            timeout=timeout,
            budget=budget,
            cancellation=cancellation,
            workers=workers,
        )

    def answers(
        self,
        bindings: Optional[Mapping[str, object]] = None,
        *,
        engine: Optional[str] = None,
        max_iterations: Optional[int] = None,
        timeout=None,
        budget=None,
        cancellation=None,
        workers: Optional[int] = None,
        **kw_bindings,
    ) -> FrozenSet[Tuple]:
        """The goal answers for one binding."""
        return self.execute(
            bindings,
            engine=engine,
            max_iterations=max_iterations,
            timeout=timeout,
            budget=budget,
            cancellation=cancellation,
            workers=workers,
            **kw_bindings,
        ).answers()

    def uses_shared_fixpoint(
        self, count: int, engine: Optional[str] = None
    ) -> bool:
        """Whether a *count*-binding batch will run as one shared fixpoint.

        True when sharing is sound (:attr:`supports_shared_execution`), the
        batch has more than one binding, and the engine is a planning
        bottom-up engine.  Callers accounting for engine work (e.g. the
        service's execution counter) use this to know how many fixpoints a
        batch actually costs.
        """
        if count <= 1 or not self.supports_shared_execution:
            return False
        return bool(getattr(self._resolve_engine(engine), "supports_planner", False))

    def execute_many(
        self,
        bindings_list: Iterable[Mapping[str, object]],
        *,
        engine: Optional[str] = None,
        max_iterations: Optional[int] = None,
        timeout=None,
        budget=None,
        cancellation=None,
        workers: Optional[int] = None,
    ) -> List[FrozenSet[Tuple]]:
        """Answers for a batch of bindings, in input order.

        When :meth:`uses_shared_fixpoint` holds, all bindings' seed facts
        are loaded into *one* fixpoint and each binding's answers are
        selected from the shared model afterwards — the per-binding cost
        collapses to a selection.  Otherwise each binding runs individually.

        A *timeout*/*budget*/*cancellation* guard covers the whole batch as
        one unit of work: one shared deadline, one fact/round budget —
        matching how the service admits a batch as a single request.
        """
        checked = [self._check_bindings(bindings) for bindings in bindings_list]
        if not checked:
            return []
        engine_object = self._resolve_engine(engine)
        guard = build_guard(timeout, budget, cancellation)
        if self.uses_shared_fixpoint(len(checked), engine):
            seeds: Dict[object, None] = {}
            for bindings in checked:
                for rule in parameter_seed_rules(bindings):
                    seeds[rule] = None
            shared_program = Program(
                self._runtime.rules + tuple(seeds), self._runtime.goal
            )
            kwargs = {}
            if guard is not None:
                kwargs["guard"] = guard
            if workers is not None:
                kwargs["workers"] = workers
            result = engine_object.evaluate(
                shared_program,
                self._database.overlay(),
                max_iterations=max_iterations,
                plan=self.plan(),
                **kwargs,
            )
            return [
                result.answers(self.goal_template.bind_parameters(bindings))
                for bindings in checked
            ]
        return [
            self._execute_bound(
                bindings,
                self.goal_template.bind_parameters(bindings),
                engine=engine,
                max_iterations=max_iterations,
                guard=guard,
                workers=workers,
            ).answers()
            for bindings in checked
        ]

    def materialize(
        self,
        bindings: Optional[Mapping[str, object]] = None,
        *,
        compiled: bool = True,
        timeout=None,
        budget=None,
        cancellation=None,
        **kw_bindings,
    ):
        """Bind every parameter and evaluate into a live materialized view.

        The returned :class:`~repro.datalog.incremental.MaterializedView`
        holds the fully evaluated model for this binding (runtime rules plus
        the binding's ``__param_*`` seed facts) and stays current under
        ``view.apply(insertions, deletions)`` — the seed facts ride along as
        program fact rules, so they are never retractable through the view.
        :class:`~repro.datalog.service.DatalogService` uses this to keep
        registered queries live across writes instead of recomputing.
        """
        from repro.datalog.incremental import MaterializedView

        merged = dict(bindings or {})
        merged.update(kw_bindings)
        checked = self._check_bindings(merged)
        seeds = parameter_seed_rules(checked)
        bound_goal = self.goal_template.bind_parameters(checked)
        program = Program(self._runtime.rules + seeds, bound_goal)
        return MaterializedView(
            program,
            self._database,
            compiled=compiled,
            guard=build_guard(timeout, budget, cancellation),
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _resolve_engine(self, engine: Optional[str]):
        name = engine if engine is not None else self._default_engine
        engine_object = get_engine(name)
        if getattr(engine_object, "transform", None) is not None:
            raise EvaluationError(
                f"engine {name!r} rewrites the program per call; prepare the "
                f"query with engine={name!r} instead so the rewrite is compiled once"
            )
        return engine_object

    def _execute_bound(
        self,
        bindings: Mapping[str, object],
        bound_goal: Atom,
        *,
        engine: Optional[str] = None,
        max_iterations: Optional[int] = None,
        timeout=None,
        budget=None,
        cancellation=None,
        guard=None,
        workers: Optional[int] = None,
    ) -> EvaluationResult:
        engine_object = self._resolve_engine(engine)
        if guard is None:
            guard = build_guard(timeout, budget, cancellation)
        seeds = parameter_seed_rules(bindings)
        if getattr(self._database, "layout", "tuple") == "columnar":
            # Intern the seed constants through the *shared* base table now,
            # not inside the engine: every binding's overlay forks the same
            # append-only table, so codes assigned here stay stable across
            # bindings and concurrent executions take the intern lock for a
            # handful of already-present values at most.
            table = self._database.columnar_store().table
            for rule in seeds:
                for value in rule.head.as_fact_tuple():
                    table.intern(value)
        exec_program = Program(self._runtime.rules + seeds, bound_goal)
        kwargs = {}
        if guard is not None:
            kwargs["guard"] = guard
        if workers is not None:
            # Forwarded unconditionally: engines without the parallel layer
            # must raise rather than silently run serial.
            kwargs["workers"] = workers
        if getattr(engine_object, "supports_planner", False):
            return engine_object.evaluate(
                exec_program,
                self._database.overlay(),
                max_iterations=max_iterations,
                plan=self.plan(),
                **kwargs,
            )
        return engine_object.evaluate(
            exec_program, self._database, max_iterations=max_iterations, **kwargs
        )

    def __repr__(self) -> str:
        return (
            f"PreparedQuery(goal={self.goal_template}, "
            f"parameters={list(self._parameter_names)}, "
            f"engine={self._default_engine!r})"
        )
