"""Parser for the Prolog-like Datalog syntax used in the paper.

The accepted syntax mirrors Example 1.1::

    ?anc(john, Y)
    anc(X, Y) :- par(X, Y).
    anc(X, Y) :- anc(X, Z), par(Z, Y).

* A line starting with ``?`` declares the goal atom.
* Rules are ``head :- body.``; facts are ``head.`` (trailing period optional).
* Identifiers starting with an upper-case letter or ``_`` are variables;
  ``$name`` is a query parameter (a placeholder for a constant bound at
  execution time); everything else (lower-case identifiers, integers,
  quoted strings) is a constant or predicate symbol depending on position.
* ``%`` and ``#`` start comments that run to the end of the line.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.datalog.atoms import Atom, NegatedAtom
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import AGGREGATE_OPS, Aggregate, Constant, Parameter, Term, Variable
from repro.errors import ParseError

_TOKEN_PATTERN = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<COMMENT>[%\#][^\n]*)
  | (?P<IMPLIES>:-)
  | (?P<LPAREN>\()
  | (?P<RPAREN>\))
  | (?P<COMMA>,)
  | (?P<PERIOD>\.)
  | (?P<QUERY>\?)
  | (?P<LANGLE><)
  | (?P<RANGLE>>)
  | (?P<STRING>"[^"]*"|'[^']*')
  | (?P<NUMBER>-?\d+)
  | (?P<PARAM>\$[A-Za-z_][A-Za-z0-9_]*)
  | (?P<IDENT>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    line: int
    column: int


def _tokenize(text: str) -> Iterator[_Token]:
    line = 1
    line_start = 0
    position = 0
    while position < len(text):
        match = _TOKEN_PATTERN.match(text, position)
        if match is None:
            raise ParseError(
                f"unexpected character {text[position]!r}", line, position - line_start + 1
            )
        kind = match.lastgroup
        token_text = match.group()
        if kind not in ("WS", "COMMENT"):
            yield _Token(kind, token_text, line, match.start() - line_start + 1)
        newlines = token_text.count("\n")
        if newlines:
            line += newlines
            line_start = match.start() + token_text.rfind("\n") + 1
        position = match.end()


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, text: str):
        self._tokens: List[_Token] = list(_tokenize(text))
        self._index = 0

    # -- token helpers -------------------------------------------------
    def _peek(self) -> Optional[_Token]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input")
        self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._next()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind} but found {token.text!r}", token.line, token.column
            )
        return token

    def _accept(self, kind: str) -> Optional[_Token]:
        token = self._peek()
        if token is not None and token.kind == kind:
            self._index += 1
            return token
        return None

    def at_end(self) -> bool:
        return self._peek() is None

    # -- grammar -------------------------------------------------------
    def parse_term(self) -> Term:
        token = self._next()
        if token.kind == "NUMBER":
            return Constant(int(token.text))
        if token.kind == "STRING":
            return Constant(token.text[1:-1])
        if token.kind == "PARAM":
            return Parameter(token.text[1:])
        if token.kind == "IDENT":
            if token.text[0].isupper() or token.text[0] == "_":
                return Variable(token.text)
            if token.text in AGGREGATE_OPS and self._accept("LANGLE"):
                inner = self._expect("IDENT")
                if not (inner.text[0].isupper() or inner.text[0] == "_"):
                    raise ParseError(
                        f"aggregate {token.text}<...> needs a variable, found {inner.text!r}",
                        inner.line,
                        inner.column,
                    )
                self._expect("RANGLE")
                return Aggregate(token.text, Variable(inner.text))
            return Constant(token.text)
        raise ParseError(f"expected a term but found {token.text!r}", token.line, token.column)

    def parse_atom(self) -> Atom:
        name_token = self._expect("IDENT")
        predicate = name_token.text
        terms: List[Term] = []
        if self._accept("LPAREN"):
            if not self._accept("RPAREN"):
                terms.append(self.parse_term())
                while self._accept("COMMA"):
                    terms.append(self.parse_term())
                self._expect("RPAREN")
        return Atom(predicate, tuple(terms))

    def parse_literal(self) -> Atom:
        """A body literal: an atom, or ``not atom`` (a :class:`NegatedAtom`).

        ``not`` followed by ``(`` keeps its old reading as a predicate named
        ``not`` — only ``not <ident>`` introduces a negated literal.
        """
        token = self._peek()
        if token is not None and token.kind == "IDENT" and token.text == "not":
            after = (
                self._tokens[self._index + 1]
                if self._index + 1 < len(self._tokens)
                else None
            )
            if after is not None and after.kind == "IDENT":
                self._next()
                atom = self.parse_atom()
                return NegatedAtom(atom.predicate, atom.terms)
        return self.parse_atom()

    def parse_rule(self) -> Rule:
        head = self.parse_atom()
        body: List[Atom] = []
        if self._accept("IMPLIES"):
            token = self._peek()
            if token is not None and token.kind == "IDENT":
                body.append(self.parse_literal())
                while self._accept("COMMA"):
                    body.append(self.parse_literal())
        self._accept("PERIOD")
        return Rule(head, tuple(body))

    def parse_program(self) -> Program:
        goal: Optional[Atom] = None
        rules: List[Rule] = []
        while not self.at_end():
            if self._accept("QUERY"):
                if goal is not None:
                    token = self._peek()
                    raise ParseError(
                        "multiple goals declared",
                        token.line if token else None,
                        token.column if token else None,
                    )
                goal = self.parse_atom()
                self._accept("PERIOD")
            else:
                rules.append(self.parse_rule())
        return Program(tuple(rules), goal)


def parse_term(text: str) -> Term:
    """Parse a single term."""
    parser = _Parser(text)
    term = parser.parse_term()
    if not parser.at_end():
        raise ParseError(f"trailing input after term: {text!r}")
    return term


def parse_atom(text: str) -> Atom:
    """Parse a single atom, e.g. ``anc(john, Y)``."""
    parser = _Parser(text)
    atom = parser.parse_atom()
    parser._accept("PERIOD")
    if not parser.at_end():
        raise ParseError(f"trailing input after atom: {text!r}")
    return atom


def parse_rule(text: str) -> Rule:
    """Parse a single rule, e.g. ``anc(X, Y) :- par(X, Y).``."""
    parser = _Parser(text)
    rule = parser.parse_rule()
    if not parser.at_end():
        raise ParseError(f"trailing input after rule: {text!r}")
    return rule


def parse_program(text: str) -> Program:
    """Parse a whole program (any number of rules plus an optional ``?goal``)."""
    return _Parser(text).parse_program()


def parse_facts(text: str) -> Tuple[Atom, ...]:
    """Parse a sequence of ground facts (one per period-terminated clause)."""
    program = parse_program(text)
    facts = []
    for rule in program.rules:
        if rule.body:
            raise ParseError(f"expected a fact but found rule {rule}")
        if not rule.head.is_ground():
            raise ParseError(f"fact {rule.head} is not ground")
        facts.append(rule.head)
    return tuple(facts)
