"""Terms of the Datalog language: variables and constants.

The paper (Section 2.1) assumes three disjoint countably infinite sets of
symbols: constants, variables, and predicates.  Here variables and constants
are immutable value objects; predicates are plain strings attached to atoms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Union


@dataclass(frozen=True, order=True)
class Variable:
    """A Datalog variable, e.g. ``X``, ``Y1``.

    Variables compare and hash by name only, so two occurrences of ``X`` in
    the same rule denote the same variable.
    """

    name: str

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


@dataclass(frozen=True, order=True)
class Constant:
    """A Datalog constant, e.g. ``john`` or ``42``.

    The value may be any hashable Python object; the parser produces strings
    and integers.
    """

    value: Hashable

    def __str__(self) -> str:
        return str(self.value)

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"


Term = Union[Variable, Constant]


def is_variable(term: Term) -> bool:
    """Return ``True`` if *term* is a :class:`Variable`."""
    return isinstance(term, Variable)


def is_constant(term: Term) -> bool:
    """Return ``True`` if *term* is a :class:`Constant`."""
    return isinstance(term, Constant)


def make_term(value) -> Term:
    """Coerce a raw Python value into a term.

    Strings starting with an upper-case letter or underscore become
    variables (the Prolog convention used throughout the paper); anything
    else becomes a constant.  Existing terms are returned unchanged.
    """
    if isinstance(value, (Variable, Constant)):
        return value
    if isinstance(value, str) and value and (value[0].isupper() or value[0] == "_"):
        return Variable(value)
    return Constant(value)


def fresh_variable(base: str, used: set) -> Variable:
    """Return a variable named after *base* that does not occur in *used*.

    ``used`` is a set of variable names; the chosen name is added to it.
    """
    if base not in used:
        used.add(base)
        return Variable(base)
    index = 1
    while f"{base}_{index}" in used:
        index += 1
    name = f"{base}_{index}"
    used.add(name)
    return Variable(name)
