"""Terms of the Datalog language: variables, constants, and parameters.

The paper (Section 2.1) assumes three disjoint countably infinite sets of
symbols: constants, variables, and predicates.  Here variables and constants
are immutable value objects; predicates are plain strings attached to atoms.

:class:`Parameter` is the one extension beyond the paper's syntax: a named
placeholder (written ``$who``) for a constant that will be supplied at
execution time.  The paper's rewrites — adornment, magic sets, constant
propagation — depend only on *which* goal argument positions are bound, not
on the concrete constants, so a parameter behaves like a constant for every
binding-pattern analysis while letting the expensive rewrite be compiled
once and executed many times with different bindings (see
:mod:`repro.datalog.prepared`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Union


@dataclass(frozen=True, order=True)
class Variable:
    """A Datalog variable, e.g. ``X``, ``Y1``.

    Variables compare and hash by name only, so two occurrences of ``X`` in
    the same rule denote the same variable.
    """

    name: str

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


@dataclass(frozen=True, order=True)
class Constant:
    """A Datalog constant, e.g. ``john`` or ``42``.

    The value may be any hashable Python object; the parser produces strings
    and integers.
    """

    value: Hashable

    def __str__(self) -> str:
        return str(self.value)

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"


@dataclass(frozen=True, order=True)
class Parameter:
    """A named query parameter, e.g. ``$who``.

    A parameter stands for a constant whose value is supplied when a
    prepared query is bound (:meth:`repro.datalog.prepared.PreparedQuery.bind`).
    For binding-pattern analyses (adornment, magic sets, join planning) a
    parameter slot counts as *bound*, exactly like a constant; engines
    refuse to evaluate programs still containing unbound parameters.
    """

    name: str

    def __str__(self) -> str:
        return f"${self.name}"

    def __repr__(self) -> str:
        return f"Parameter({self.name!r})"


#: Aggregate operators accepted in rule heads (``degree(X, count<Y>)``).
AGGREGATE_OPS = ("count", "sum", "min", "max")


@dataclass(frozen=True, order=True)
class Aggregate:
    """An aggregate head term, e.g. ``count<Y>`` or ``min<D>``.

    ``op`` is one of :data:`AGGREGATE_OPS` and ``variable`` the aggregated
    variable, which must be bound by a positive body atom (safety).  The
    rule's remaining head terms form the *group key*; the aggregate is
    computed over the **distinct** bindings of ``variable`` per group, so
    the result is a function of the minimum model alone — independent of
    join order, engine, and duplicate derivations.
    """

    op: str
    variable: Variable

    def __str__(self) -> str:
        return f"{self.op}<{self.variable}>"

    def __repr__(self) -> str:
        return f"Aggregate({self.op!r}, {self.variable!r})"


Term = Union[Variable, Constant, Parameter, Aggregate]


def is_variable(term: Term) -> bool:
    """Return ``True`` if *term* is a :class:`Variable`."""
    return isinstance(term, Variable)


def is_constant(term: Term) -> bool:
    """Return ``True`` if *term* is a :class:`Constant`."""
    return isinstance(term, Constant)


def is_parameter(term: Term) -> bool:
    """Return ``True`` if *term* is a :class:`Parameter`."""
    return isinstance(term, Parameter)


def make_term(value) -> Term:
    """Coerce a raw Python value into a term.

    Strings starting with an upper-case letter or underscore become
    variables (the Prolog convention used throughout the paper); strings
    starting with ``$`` become parameters; anything else becomes a
    constant.  Existing terms are returned unchanged.
    """
    if isinstance(value, (Variable, Constant, Parameter, Aggregate)):
        return value
    if isinstance(value, str) and value:
        if value[0].isupper() or value[0] == "_":
            return Variable(value)
        if value[0] == "$" and len(value) > 1:
            return Parameter(value[1:])
    return Constant(value)


def fresh_variable(base: str, used: set) -> Variable:
    """Return a variable named after *base* that does not occur in *used*.

    ``used`` is a set of variable names; the chosen name is added to it.
    """
    if base not in used:
        used.add(base)
        return Variable(base)
    index = 1
    while f"{base}_{index}" in used:
        index += 1
    name = f"{base}_{index}"
    used.add(name)
    return Variable(name)
