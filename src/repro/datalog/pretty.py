"""Pretty-printing of Datalog objects (round-trips with :mod:`repro.datalog.parser`)."""

from __future__ import annotations

from typing import Iterable

from repro.datalog.atoms import Atom, NegatedAtom
from repro.datalog.database import Database
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Aggregate, Constant, Parameter, Term, Variable


def format_term(term: Term) -> str:
    """Render a term; quoted if a constant would otherwise read as a variable."""
    if isinstance(term, Variable):
        return term.name
    if isinstance(term, Parameter):
        return f"${term.name}"
    if isinstance(term, Aggregate):
        return f"{term.op}<{format_term(term.variable)}>"
    value = term.value
    if isinstance(value, str):
        if value and (value[0].isupper() or value[0] == "_" or not value.isidentifier()):
            return f'"{value}"'
        return value
    return str(value)


def format_atom(atom: Atom) -> str:
    """Render an atom (negated body literals get their ``not`` prefix)."""
    prefix = "not " if isinstance(atom, NegatedAtom) else ""
    if not atom.terms:
        return prefix + atom.predicate
    return f"{prefix}{atom.predicate}({', '.join(format_term(t) for t in atom.terms)})"


def format_rule(rule: Rule) -> str:
    """Render a rule with a trailing period."""
    if not rule.body:
        return f"{format_atom(rule.head)}."
    body = ", ".join(format_atom(atom) for atom in rule.body)
    return f"{format_atom(rule.head)} :- {body}."


def format_program(program: Program) -> str:
    """Render a program; the goal line (if any) comes first, as in the paper."""
    lines = []
    if program.goal is not None:
        lines.append(f"?{format_atom(program.goal)}")
    lines.extend(format_rule(rule) for rule in program.rules)
    return "\n".join(lines)


def format_database(database: Database) -> str:
    """Render a database as a list of facts."""
    return "\n".join(f"{format_atom(fact)}." for fact in database.facts())


def format_rules(rules: Iterable[Rule]) -> str:
    """Render a sequence of rules, one per line."""
    return "\n".join(format_rule(rule) for rule in rules)
