"""Process-sharded semi-naive rounds over the packed-bigint lane.

CPython threads cannot speed up the pure-Python join kernels in
:mod:`repro.datalog.columnar.batch`, so the throughput lever for one big
recursive stratum is processes.  The classic obstacle — shipping state
across the process boundary — is what the columnar layout was built to
make cheap: a round's delta is a handful of ``int`` columns plus packed
row keys, which pickle as flat machine words.

The scheme is bulk-synchronous, one pool of 1 process per shard:

* **fork snapshot** — worker processes are forked (lazily, at the first
  round big enough to shard) and inherit the driver's
  :class:`~repro.datalog.columnar.batch._BatchWorking` by copy-on-write:
  no serialization of the base relations, ever.  Workers never touch the
  intern table — every kernel sequence is lowered pre-fork, and delta
  evaluation is pure packed-int arithmetic — so forking from a threaded
  host (the service executor) is safe.
* **incremental sync** — after the snapshot, every commit's fresh rows
  are queued per pool and prepended to the next round a worker runs, so
  each worker's view equals the driver's working set at round start.
  Only predicates some delta variant *probes positionally* are mirrored
  as real columns (with per-row index maintenance); every other
  committed predicate — linear recursive heads above all — lands in a
  bare packed-key overlay, a C-speed bulk ``set.update`` that is exactly
  enough for dedup and anti-joins.  Mirror application is key-filtered,
  which makes a double-applied payload harmless.
* **sharded firing** — each worker fires every delta variant over only
  the delta rows whose first column hashes to its shard
  (``code % nshards``); a delta row fires its matches in exactly one
  shard, so per-variant firing counts sum to the serial count.
* **serial-order merge** — the driver replays the serial loop's exact
  bookkeeping: per rule, per delta position, ``fresh = (∪ shard fresh)
  − evolving bucket`` (each shard already deduped against the
  round-start model, i.e. its mirror), then
  ``record_batch(pred, Σ firings, len(fresh))``.  Model and
  ``EvaluationStatistics`` come out bit-identical to the serial lane —
  the contract the Hypothesis differential property enforces.  Workers
  pre-unpack their fresh keys into columns; when a head's shard outputs
  were pairwise disjoint and nothing else fired into it, the driver
  commits by concatenating those columns instead of re-unpacking.
* **decomposable strata (owner-computes)** — a recursive stratum whose
  single active variant carries the delta's shard column unchanged into
  the head's first column (``tc(X, Y) :- tc(X, Z), edge(Z, Y)``) is
  *shard-closed*: everything shard ``s`` can ever derive stays in shard
  ``s``.  Such strata shard the delta once ("seed") and from then on
  each worker retains its own fresh rows as the next round's delta
  ("use") — no resharding, no key shipping, no cross-shard sync at all.
  The analysis (:func:`_decomposable_strata`) is conservative: the head
  must never be probed positionally or anti-joined by any *delta*
  variant (static passes always fire in-driver, where the model is
  complete), so skipping the sync is provably invisible; an overlapping
  merge in such a stratum raises instead of degrading silently.

Rounds smaller than :data:`MIN_SHARD_ROWS` run in-driver (a process
round-trip costs more than a tiny delta); the choice is invisible to
results.  Cancellation and deadlines propagate: the driver checkpoints
its guard while waiting on shard futures, and aborting sets a
fork-inherited event that workers observe between rules, after which the
pools are joined — no orphan processes.
"""

from __future__ import annotations

import itertools
import multiprocessing
from array import array
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from typing import Dict, List, Optional, Set, Tuple

from repro.datalog.columnar.batch import (
    _BatchAntiStep,
    _BatchLeaf,
    _BatchStep,
    _BatchWorking,
    _decode_idb,
    _fire_delta,
    _fire_static,
    _head_arities,
    _load_facts_seminaive,
    _run_sequence,
    _stratum_kernels,
    plan_supported,
)
from repro.datalog.columnar.relation import KEY_BITS, ColumnarRelation
from repro.datalog.engine.base import EvaluationResult
from repro.errors import EvaluationError

_KEY_MASK = (1 << KEY_BITS) - 1

#: Delta rows below which a round runs in-driver: the ~ms of pickling and
#: queue latency per process round-trip outweighs firing a small delta
#: locally.  Statistics parity holds on either path, so the threshold is
#: a pure tuning knob.
MIN_SHARD_ROWS = 192

#: How long the driver blocks on a shard future between guard checkpoints,
#: so cancellation/deadlines interrupt even a long worker round promptly.
_WAIT_SLICE = 0.005

_COUNTER = itertools.count(1)
#: eval id -> state; populated pre-fork so forked workers inherit their
#: evaluation's working mirror, lowered rules and cancel event by COW.
_STATES: Dict[int, "_ShardState"] = {}


class ShardAborted(EvaluationError):
    """A worker observed the cancel event (or lost its state) mid-round."""


class _ShardWorking:
    """A worker's view of the working set: inherited mirror + key overlays.

    Predicates some delta variant probes positionally need real columnar
    parts, so their post-fork commits extend the inherited mirror (see
    :func:`_apply_payload`).  Every *other* committed predicate — linear
    recursive heads above all — is only ever consulted as packed-key
    sets, for dedup of head emissions and for anti-join membership; those
    accumulate in ``overlay`` via bulk ``set.update`` and are never
    materialized as columns, skipping the Python-per-row append and index
    maintenance that would otherwise be duplicated in every worker.
    """

    __slots__ = ("inner", "probed", "overlay")

    def __init__(self, inner: _BatchWorking, probed: Set[str]):
        self.inner = inner
        self.probed = probed
        self.overlay: Dict[Tuple[str, int], set] = {}

    def parts(self, predicate: str, arity: int):
        # Only reached for probed predicates, whose mirror is maintained.
        return self.inner.parts(predicate, arity)

    def key_sets(self, predicate: str, arity: int):
        sets = self.inner.key_sets(predicate, arity)
        extra = self.overlay.get((predicate, arity))
        return sets + [extra] if extra else sets


class _ShardState:
    """Everything a forked worker needs, snapshotted at fork time.

    ``retained`` is worker-local continuation state for decomposable
    strata: stratum index -> this shard's delta groups for the next round
    (its own previous fresh rows).  It starts empty pre-fork and is only
    ever mutated inside a worker process.
    """

    __slots__ = ("working", "rules", "cancel", "retained")

    def __init__(self, working, rules, cancel):
        self.working = working
        self.rules = rules
        self.cancel = cancel
        self.retained: Dict[int, Dict[str, Dict[int, ColumnarRelation]]] = {}


def available() -> bool:
    """Fork-start workers are what make the zero-copy snapshot possible."""
    return "fork" in multiprocessing.get_all_start_methods()


def applicable(plan, database, program, workers: int) -> bool:
    """Whether the sharded driver should take this evaluation.

    Requires ``workers > 1``, fork support, a fully-compiled plan with at
    least one recursive stratum — and a program *off* the NumPy vector
    lane: vector rounds are already C-speed, too cheap for cross-process
    sharding to amortize, so vector-eligible programs stay on it, serial.
    """
    from repro.datalog.columnar import vector

    if workers <= 1 or not available():
        return False
    if not plan_supported(plan):
        return False
    if not any(stratum.recursive for stratum in plan.strata):
        return False
    if vector.supported(plan, database.columnar_store().table, program):
        return False
    return True


def _lowered_rules(plan, working: _BatchWorking):
    """Pre-lower every kernel (interning all constants now, pre-fork).

    Returns ``{stratum index: ((head, head_arity, ((position, body
    predicate, sequence), ...)), ...)}`` — the per-variant firing schedule
    both the workers and the driver's merge replay in identical order.
    """
    rules: Dict[int, Tuple] = {}
    for stratum in plan.strata:
        entries = []
        for rule in stratum.rules:
            batch = plan.kernel(rule).batch_kernel()
            _, variants = batch.sequences(working.table)
            entries.append(
                (
                    rule.head.predicate,
                    batch.head_arity,
                    tuple(
                        (position, rule.body[position].predicate, variants[position])
                        for position in batch.kernel.delta_positions
                    ),
                )
            )
        rules[stratum.index] = tuple(entries)
    return rules


def _probed_predicates(rules) -> Set[str]:
    """Predicates whose full relation some delta variant probes.

    A variant's non-delta steps join against ``working.parts``; those
    predicates need a real columnar mirror in every worker.  For linear
    rules the recursive head never appears here — it is only the delta —
    so the whole fixpoint's output predicate stays on the cheap key-set
    overlay.  Nonlinear and mutually recursive bodies (same-stratum
    predicates at non-delta positions) land in the probed set and pay
    for full mirror sync.
    """
    probed: Set[str] = set()
    for entries in rules.values():
        for _head, _head_arity, variants in entries:
            for _position, _body, sequence in variants:
                for step in sequence.steps:
                    if type(step) is _BatchStep and not step.use_delta:
                        probed.add(step.predicate)
                leaf = sequence.leaf
                if type(leaf) is _BatchLeaf and not leaf.use_delta:
                    probed.add(leaf.predicate)
    return probed


def _anti_predicates(rules) -> Set[str]:
    """Predicates some delta variant consults through an anti-join.

    Anti steps read complete key sets, so these predicates need full key
    synchronization in every worker (a key-set overlay is enough — anti
    never probes columns — but it must not be shard-partial).
    """
    anti: Set[str] = set()
    for entries in rules.values():
        for _head, _head_arity, variants in entries:
            for _position, _body, sequence in variants:
                for step in sequence.steps:
                    if type(step) is _BatchAntiStep:
                        anti.add(step.predicate)
    return anti


def _decomposable_strata(plan, probed: Set[str], anti: Set[str]) -> Dict[int, int]:
    """Recursive strata that admit owner-computes sharding: index -> column.

    A stratum is *decomposable* when its recursion is a single
    self-recursive delta variant whose head carries the delta atom's
    column ``c`` into the head's first position (``tc(X, Y) :- tc(X, Z),
    edge(Z, Y)`` with ``c = 0``).  Sharding the delta on column ``c``
    then makes the shards closed: every fact worker ``s`` derives lands
    back in shard ``s``, so a worker can keep its own fresh rows as the
    next round's delta — no resharding, no cross-shard key exchange — and
    its dedup needs only its own shard's keys (emissions from shard ``s``
    can only ever collide with keys whose first column is in shard
    ``s``).  The head must not be probed positionally or anti-joined by
    any delta variant, since those reads need the full relation in every
    worker; nonrecursive consumers are harmless — static passes fire
    in-driver, where the model is always complete.
    """
    from repro.datalog.terms import Variable

    decomposable: Dict[int, int] = {}
    for stratum in plan.strata:
        if not stratum.recursive:
            continue
        heads = {rule.head.predicate for rule in stratum.rules}
        active = []
        supported = True
        for rule in stratum.rules:
            kernel = plan.kernel(rule)
            if kernel is None:
                supported = False
                break
            for position in kernel.delta_positions:
                if rule.body[position].predicate in heads:
                    active.append((rule, position))
        if not supported or len(active) != 1:
            continue
        rule, position = active[0]
        head, atom = rule.head, rule.body[position]
        if head.predicate != atom.predicate:
            continue
        if head.predicate in probed or head.predicate in anti:
            continue
        if not head.terms or not isinstance(head.terms[0], Variable):
            continue
        column = next(
            (c for c, term in enumerate(atom.terms) if term == head.terms[0]),
            None,
        )
        if column is not None:
            decomposable[stratum.index] = column
    return decomposable


def _commit_with_payload(working: _BatchWorking, buckets, head_arities):
    """:func:`batch._commit`, plus a picklable payload of the fresh rows.

    The payload entries are ``(predicate, arity, columns, keys)``, keys
    aligned row-for-row with the columns — exactly what a worker needs to
    sync its view and build its shard's delta.  Columns are ``array('q')``
    (the relation's own storage type), which pickles as one flat byte
    buffer instead of per-element ints.
    """
    delta: Dict[str, Dict[int, ColumnarRelation]] = {}
    payload: List[Tuple[str, int, List[array], List[int]]] = []
    added = 0
    for predicate, bucket in buckets.items():
        if not bucket:
            continue
        keys_list = list(bucket)
        arities = head_arities.get(predicate)
        per_arity: Dict[int, List[int]] = {}
        if arities is not None and len(arities) == 1:
            (arity,) = arities
            per_arity[arity] = keys_list
        else:
            for key in keys_list:
                arity = (key.bit_length() - 1) // KEY_BITS if key else 0
                per_arity.setdefault(arity, []).append(key)
        groups: Dict[int, ColumnarRelation] = {}
        for arity, keys in per_arity.items():
            columns = [
                array("q", [(key >> shift) & _KEY_MASK for key in keys])
                for shift in (KEY_BITS * (arity - 1 - j) for j in range(arity))
            ]
            working.local_group(predicate, arity).extend_columns(columns, keys)
            group = ColumnarRelation(arity)
            group.extend_columns(columns, keys)
            groups[arity] = group
            payload.append((predicate, arity, columns, keys))
        delta[predicate] = groups
        added += len(keys_list)
    return delta, payload, added


def _commit_merged(working: _BatchWorking, buckets, head_arities, clean):
    """Commit a sharded round, concatenating pre-unpacked shard columns.

    Workers unpack their fresh keys into columns before returning, so for
    every head whose round stayed *clean* — a single contributing variant
    and no cross-shard duplicates, which the merge detects by comparing
    set sizes — the commit is pure C-speed ``array.extend`` of the shard
    pieces.  Heads that saw cross-shard duplicates or multiple
    contributing variants fall back to the driver-side unpack (the shard
    pieces are stale there: they still contain the subtracted rows).
    """
    delta: Dict[str, Dict[int, ColumnarRelation]] = {}
    payload: List[Tuple[str, int, Tuple[array, ...], List[int]]] = []
    added = 0
    for predicate, bucket in buckets.items():
        if not bucket:
            continue
        pieces = clean.get(predicate)
        if pieces is not None:
            groups: Dict[int, ColumnarRelation] = {}
            for arity, keys, columns in pieces:
                working.local_group(predicate, arity).extend_columns(columns, keys)
                group = groups.get(arity)
                if group is None:
                    group = groups[arity] = ColumnarRelation(arity)
                group.extend_columns(columns, keys)
                payload.append((predicate, arity, columns, keys))
                added += len(keys)
            delta[predicate] = groups
            continue
        keys_list = list(bucket)
        arities = head_arities.get(predicate)
        per_arity: Dict[int, List[int]] = {}
        if arities is not None and len(arities) == 1:
            (arity,) = arities
            per_arity[arity] = keys_list
        else:
            for key in keys_list:
                arity = (key.bit_length() - 1) // KEY_BITS if key else 0
                per_arity.setdefault(arity, []).append(key)
        groups = {}
        for arity, keys in per_arity.items():
            columns = tuple(
                array("q", [(key >> shift) & _KEY_MASK for key in keys])
                for shift in (KEY_BITS * (arity - 1 - j) for j in range(arity))
            )
            working.local_group(predicate, arity).extend_columns(columns, keys)
            group = ColumnarRelation(arity)
            group.extend_columns(columns, keys)
            groups[arity] = group
            payload.append((predicate, arity, columns, keys))
        delta[predicate] = groups
        added += len(keys_list)
    return delta, payload, added


# ----------------------------------------------------------------------
# Worker side (runs in forked processes)
# ----------------------------------------------------------------------
def _ping(eval_id: int) -> bool:
    """Warm-up task: forces the pool to fork *now*, pinning the snapshot."""
    return eval_id in _STATES


def _apply_payload(working: _ShardWorking, payload) -> None:
    """Absorb a commit's rows into the worker's view of the working set.

    Probed predicates extend the real mirror, key-filtered so that a
    payload that raced the fork (applied both by inheritance and by sync)
    changes nothing; everything else is a bulk key-set union, idempotent
    by construction.
    """
    for predicate, arity, columns, keys in payload:
        if predicate not in working.probed:
            working.overlay.setdefault((predicate, arity), set()).update(keys)
            continue
        group = working.inner.local_group(predicate, arity)
        have = group.keys
        if have:
            rows = [i for i, key in enumerate(keys) if key not in have]
        else:
            rows = list(range(len(keys)))
        if len(rows) == len(keys):
            group.extend_columns(columns, keys)
        elif rows:
            group.extend_columns(
                [[column[i] for i in rows] for column in columns],
                [keys[i] for i in rows],
            )


def _shard_groups(payload, shard: int, nshards: int, shard_column: int = 0):
    """This shard's slice of the round delta: column ``shard_column % nshards``.

    Arity-0 rows (propositional heads) all land on shard 0, and entries
    too narrow for ``shard_column`` fall back to column 0 (any consistent
    partition of a round's delta is valid — the column only matters for
    decomposable strata, whose heads are wide enough by construction).
    Variants whose delta slice is empty still run — they see no parts and
    fire zero matches — so the driver's merge indexes stay aligned.
    """
    delta: Dict[str, Dict[int, ColumnarRelation]] = {}
    for predicate, arity, columns, keys in payload:
        if arity == 0:
            if shard != 0:
                continue
            rows = list(range(len(keys)))
        else:
            first = columns[shard_column if shard_column < arity else 0]
            rows = [i for i in range(len(keys)) if first[i] % nshards == shard]
        if not rows:
            continue
        # A clean merged commit ships one payload entry per shard piece,
        # so the same (predicate, arity) can appear repeatedly: extend,
        # never replace.
        groups = delta.setdefault(predicate, {})
        group = groups.get(arity)
        if group is None:
            group = groups[arity] = ColumnarRelation(arity)
        group.extend_columns(
            [[column[i] for i in rows] for column in columns],
            [keys[i] for i in rows],
        )
    return delta


def _worker_round(
    eval_id, stratum_index, sync, delta_payload, delta_predicates,
    shard, nshards, shard_column, retain,
):
    """One shard's half-round: sync the view, fire every delta variant.

    Returns ``[(rule index, delta position, firings, fresh keys, fresh
    columns), ...]``; each fresh set is already deduped against this
    worker's view of the round-start model, and its column unpacking —
    the serial commit's per-row Python cost — has been done here, in
    parallel, so the driver can commit clean heads by concatenation.

    ``retain`` is the decomposable-stratum protocol: ``"off"`` builds the
    delta from *delta_payload* as usual; ``"seed"`` does the same but
    keeps this round's fresh rows as the next round's delta; ``"use"``
    fires the retained delta (the driver then ships no payload at all).
    In seed/use rounds the worker also folds its own fresh keys into its
    overlay — the driver will not sync that commit back, and by
    shard-closure no other worker's keys can ever collide with ours.
    """
    state = _STATES.get(eval_id)
    if state is None:
        raise ShardAborted(f"shard state {eval_id} missing in worker (fork raced)")
    working = state.working
    for payload in sync:
        _apply_payload(working, payload)
    if retain == "use":
        delta = state.retained.get(stratum_index)
        if delta is None:
            raise ShardAborted(
                f"worker shard {shard} has no retained delta for stratum "
                f"{stratum_index}"
            )
    else:
        delta = _shard_groups(delta_payload, shard, nshards, shard_column)
    delta_predicates = set(delta_predicates)
    cancel = state.cancel
    out: List[Tuple[int, int, int, List[int], Tuple[array, ...]]] = []
    retained: Dict[str, Dict[int, ColumnarRelation]] = {}
    for index, (head, head_arity, variants) in enumerate(state.rules[stratum_index]):
        if cancel.is_set():
            raise ShardAborted("evaluation cancelled")
        existing = working.key_sets(head, head_arity)
        for position, body_predicate, sequence in variants:
            if body_predicate not in delta_predicates:
                continue
            bucket: set = set()
            firings, _new = _run_sequence(sequence, working, delta, bucket, existing)
            keys = list(bucket)
            columns = tuple(
                array("q", [(key >> shift) & _KEY_MASK for key in keys])
                for shift in (KEY_BITS * (head_arity - 1 - j) for j in range(head_arity))
            )
            out.append((index, position, firings, keys, columns))
            if retain != "off" and keys:
                group = ColumnarRelation(head_arity)
                group.extend_columns(columns, keys)
                retained.setdefault(head, {})[head_arity] = group
                working.overlay.setdefault((head, head_arity), set()).update(keys)
    if retain != "off":
        state.retained[stratum_index] = retained
    return out


# ----------------------------------------------------------------------
# Driver side
# ----------------------------------------------------------------------
def evaluate_seminaive_sharded(
    program,
    database,
    plan,
    statistics,
    max_iterations: Optional[int],
    guard=None,
    workers: int = 2,
) -> EvaluationResult:
    """The semi-naive fixpoint with process-sharded recursive rounds.

    Mirrors :func:`repro.datalog.columnar.batch.evaluate_seminaive` round
    for round; only the delta firing of large recursive rounds is farmed
    out to ``workers`` forked shards.  Model and statistics are identical
    to the serial lane's.
    """
    idb_predicates = program.idb_predicates()
    working = _BatchWorking(database)
    _load_facts_seminaive(program, working, statistics)

    def check_budget() -> None:
        if guard is not None:
            guard.checkpoint(statistics)
        if max_iterations is not None and statistics.iterations > max_iterations:
            raise EvaluationError(
                f"semi-naive evaluation exceeded {max_iterations} iterations"
            )

    head_arities = _head_arities(plan)
    rules = _lowered_rules(plan, working)
    probed = _probed_predicates(rules)
    decomposable = _decomposable_strata(plan, probed, _anti_predicates(rules))
    context = multiprocessing.get_context("fork")
    cancel = context.Event()
    eval_id = next(_COUNTER)
    _STATES[eval_id] = _ShardState(_ShardWorking(working, probed), rules, cancel)
    pools: List[ProcessPoolExecutor] = []
    pending: List[List] = []

    def ensure_pools() -> None:
        """Fork the shard workers now, snapshotting the current working set."""
        if pools:
            return
        for _ in range(workers):
            pool = ProcessPoolExecutor(max_workers=1, mp_context=context)
            pools.append(pool)
            pending.append([])
        # The executor forks lazily on first submit; ping each pool so the
        # snapshot is pinned *here*, before the driver mutates further.
        for pool in pools:
            pool.submit(_ping, eval_id).result()

    def wait_result(future):
        """Block on a shard future, checkpointing the guard while waiting."""
        while True:
            try:
                return future.result(timeout=_WAIT_SLICE)
            except _FutureTimeout:
                if guard is not None:
                    guard.checkpoint(statistics)

    try:
        for stratum in plan.strata:
            statistics.record_stratum()
            label = stratum.label
            kernels = _stratum_kernels(plan, stratum)
            entries = rules[stratum.index]
            shard_column = decomposable.get(stratum.index)
            retained_valid = False

            statistics.record_iteration(label)
            check_budget()
            buckets: Dict[str, set] = {}
            for rule, batch in kernels:
                if guard is not None:
                    guard.checkpoint(statistics)
                bucket = buckets.setdefault(rule.head.predicate, set())
                _fire_static(batch, working, bucket, statistics)
            delta, payload, added = _commit_with_payload(working, buckets, head_arities)
            for queue in pending:
                queue.append(payload)

            if not stratum.recursive:
                continue

            while added:
                statistics.record_iteration(label)
                check_budget()
                delta_predicates = set(delta)
                if added < MIN_SHARD_ROWS:
                    # Small round: fire in-driver (identical to the serial
                    # lane); the commit below still syncs it to the pools.
                    buckets = {}
                    for rule, batch in kernels:
                        if guard is not None:
                            guard.checkpoint(statistics)
                        bucket = buckets.setdefault(rule.head.predicate, set())
                        _fire_delta(
                            batch, rule, working, delta, delta_predicates,
                            bucket, statistics,
                        )
                else:
                    ensure_pools()
                    if shard_column is None:
                        retain = "off"
                    elif retained_valid:
                        retain = "use"
                    else:
                        retain = "seed"
                    round_payload = [] if retain == "use" else payload
                    futures = []
                    for shard, pool in enumerate(pools):
                        sync = pending[shard]
                        pending[shard] = []
                        futures.append(
                            pool.submit(
                                _worker_round,
                                eval_id, stratum.index, sync, round_payload,
                                sorted(delta_predicates), shard, len(pools),
                                0 if shard_column is None else shard_column,
                                retain,
                            )
                        )
                    shard_maps = []
                    for future in futures:
                        shard_maps.append(
                            {
                                (index, position): (firings, keys, columns)
                                for index, position, firings, keys, columns
                                in wait_result(future)
                            }
                        )
                    # Serial-order merge: replay the exact bookkeeping of
                    # the serial loop.  Shard fresh sets are already deduped
                    # against the round-start model (each worker's view);
                    # only the evolving bucket — same-round emissions of
                    # earlier variants/rules for this head — is subtracted
                    # here.  Skipping a redundant model-wide subtraction
                    # also means a desynced worker view fails parity loudly
                    # instead of being silently papered over.  A variant is
                    # *clean* when the bucket was empty and the shard fresh
                    # sets were pairwise disjoint (union size == sum of
                    # sizes); clean heads commit by concatenating the
                    # workers' pre-unpacked columns.
                    buckets = {}
                    clean: Dict[str, List[Tuple[int, List[int], Tuple]]] = {}
                    dirty: Set[str] = set()
                    for index, (head, head_arity, variants) in enumerate(entries):
                        if guard is not None:
                            guard.checkpoint(statistics)
                        bucket = buckets.setdefault(head, set())
                        for position, body_predicate, _sequence in variants:
                            if body_predicate not in delta_predicates:
                                continue
                            firings = 0
                            total = 0
                            fresh: set = set()
                            pieces: List[Tuple[int, List[int], Tuple]] = []
                            for shard_map in shard_maps:
                                shard_firings, keys, columns = shard_map[
                                    (index, position)
                                ]
                                firings += shard_firings
                                if keys:
                                    total += len(keys)
                                    fresh.update(keys)
                                    pieces.append((head_arity, keys, columns))
                            if bucket:
                                fresh.difference_update(bucket)
                                clean_variant = False
                            else:
                                clean_variant = len(fresh) == total
                            statistics.record_batch(head, firings, len(fresh))
                            if fresh:
                                bucket |= fresh
                                if clean_variant and head not in dirty:
                                    clean.setdefault(head, []).extend(pieces)
                                else:
                                    dirty.add(head)
                                    clean.pop(head, None)
                    delta, payload, added = _commit_merged(
                        working, buckets, head_arities, clean
                    )
                    if shard_column is not None:
                        if dirty or any(
                            bucket and head not in clean
                            for head, bucket in buckets.items()
                        ):
                            raise EvaluationError(
                                "decomposable stratum produced overlapping "
                                f"shard outputs (stratum {stratum.index}); "
                                "shard-closure analysis is unsound"
                            )
                        # Owner-computes: each worker already kept its own
                        # fresh rows as the next round's delta and folded
                        # the keys into its overlay, so nothing is shipped.
                        retained_valid = True
                    else:
                        for queue in pending:
                            queue.append(payload)
                    continue
                delta, payload, added = _commit_with_payload(
                    working, buckets, head_arities
                )
                for queue in pending:
                    queue.append(payload)
                retained_valid = False
    finally:
        cancel.set()
        for pool in pools:
            pool.shutdown(wait=True, cancel_futures=True)
        _STATES.pop(eval_id, None)

    idb_facts = _decode_idb(working, database, idb_predicates)
    return EvaluationResult(program, database, idb_facts, statistics)


__all__ = [
    "MIN_SHARD_ROWS",
    "ShardAborted",
    "applicable",
    "available",
    "evaluate_seminaive_sharded",
]
