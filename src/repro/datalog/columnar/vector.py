"""The NumPy vector lane: whole-round joins as C-speed array kernels.

The packed-bigint lane in :mod:`repro.datalog.columnar.batch` removes the
per-firing closure overhead of the tuple kernels, but every emitted key
still costs a handful of Python bytecodes.  On workloads whose head
relations fit two 32-bit lanes in a signed 64-bit integer — every binary
program, which is the shape of the transitive-closure acceptance gates —
this module lowers the *same* step programs once more, onto ndarrays:

* columns are ``int64`` arrays (copied from the ``array('q')`` storage and
  cached with a row-count stamp);
* an index probe over a whole batch is one CSR expansion —
  ``searchsorted`` into the sorted distinct codes, ``np.repeat`` of the
  batch rows by match count, one gather for the matched rows;
* equality checks are boolean masks; head emission is a fused
  multiply-add producing ready-packed ``int64`` keys;
* dedup is ``np.unique`` (batch-internal duplicates, the bulk of a
  fixpoint's waste) followed by ``searchsorted`` membership against the
  sorted key arrays of the existing parts.

Eligibility is whole-evaluation, decided by :func:`supported`: every rule
head must have arity ≤ 2 and the intern table must stay below 2**30 codes
(the bound that keeps every weighted key sum inside ``int64``).  Anything
else — wider heads, a missing NumPy — falls back to the packed lane,
which is observationally identical.  Statistics parity follows the same
discipline as the other lanes: firings are counted after all checks, and
"new" counts are bucket growth against the round-start state.

This lane always runs serial, even under ``workers > 1``: its rounds are
already C-speed array sweeps, so the per-round pickling and queue latency
of the process-sharded driver (:mod:`repro.datalog.columnar.shard`) would
dominate any split — sharding targets the interpreter-bound packed lane,
i.e. exactly the programs (wide heads) this lane cannot take.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

try:  # NumPy is an optional accelerator, never a hard dependency.
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    np = None

from repro.datalog.atoms import NegatedAtom
from repro.datalog.columnar.batch import _BatchAntiStep, _EmitLeaf
from repro.datalog.columnar.decode import LazyDecodedDatabase
from repro.datalog.columnar.relation import KEY_BITS, ColumnarRelation, pack_codes
from repro.datalog.database import Database
from repro.datalog.engine.base import EvaluationResult, split_rules
from repro.datalog.engine.executor import PROBE_CONST, PROBE_SCAN, PROBE_SLOT
from repro.errors import EvaluationError

_KEY_MASK = (1 << KEY_BITS) - 1
_UNSET = object()

#: Above this many interned constants a weighted two-lane key sum could
#: leave int64; the packed-bigint lane has no such bound and takes over.
_MAX_CODES = 1 << 30


def available() -> bool:
    return np is not None


def supported(plan, table, program) -> bool:
    """Whether this evaluation can run entirely on the vector lane."""
    if np is None:
        return False
    growth = 0
    for rule in program.rules:
        if rule.is_fact():
            growth += len(rule.head.terms)
    if len(table) + growth + 64 >= _MAX_CODES:
        return False
    for stratum in plan.strata:
        for rule in stratum.rules:
            if len(rule.head.terms) > 2:
                return False
            for atom in rule.body:
                # Anti-join keys are packed the same way as head keys, so a
                # negated literal's arity is bounded like a head's.
                if isinstance(atom, NegatedAtom) and len(atom.terms) > 2:
                    return False
    return True


def _unseed(key: int, arity: int) -> int:
    """Strip the arity seed from a packed key (vector keys are per-arity)."""
    return key - (arity << (KEY_BITS * arity))


# ----------------------------------------------------------------------
# Part access: uniform ndarray views over base groups, local rows, deltas
# ----------------------------------------------------------------------
class _VecGroup:
    """Locally derived rows of one (predicate, arity): ndarray chunks."""

    __slots__ = ("arity", "nrows", "col_chunks", "key_chunks", "key_set", "_cache")

    def __init__(self, arity: int):
        self.arity = arity
        self.nrows = 0
        self.col_chunks: Tuple[List, ...] = tuple([] for _ in range(arity))
        self.key_chunks: List = []
        # Incrementally maintained key membership for the fallback dedup
        # path (domains too large for the dense bitmap).  A local group
        # grows on every round, so a sorted-array snapshot would be rebuilt
        # (an O(n log n) concat + sort) each round — on deep recursions
        # with tiny deltas that rebuild dominates the whole evaluation.  A
        # plain Python set updates in O(delta) instead; it is built lazily
        # on first fallback use so bitmap-deduped groups never pay for it.
        self.key_set: Optional[set] = None
        self._cache: Dict[tuple, tuple] = {}

    def append(self, cols, keys) -> None:
        for position, column in enumerate(cols):
            self.col_chunks[position].append(column)
        self.key_chunks.append(keys)
        if self.key_set is not None:
            self.key_set.update(keys.tolist())
        self.nrows += len(keys)

    def ensure_key_set(self) -> set:
        if self.key_set is None:
            key_set = set()
            for chunk in self.key_chunks:
                key_set.update(chunk.tolist())
            self.key_set = key_set
        return self.key_set


class _DeltaPart:
    """One round's fresh rows of one (predicate, arity)."""

    __slots__ = ("arity", "cols", "keys", "_cache")

    def __init__(self, arity: int, cols, keys):
        self.arity = arity
        self.cols = cols
        self.keys = keys
        self._cache: Dict[tuple, tuple] = {}


def _part_len(part) -> int:
    if isinstance(part, ColumnarRelation):
        return len(part)
    if isinstance(part, _VecGroup):
        return part.nrows
    return len(part.keys)


def _cache_of(part) -> Dict[tuple, tuple]:
    return part._np if isinstance(part, ColumnarRelation) else part._cache


def _cached(part, key, build):
    """Row-count-stamped per-part cache: appends make stale entries miss."""
    cache = _cache_of(part)
    stamp = _part_len(part)
    entry = cache.get(key)
    if entry is not None and entry[0] == stamp:
        return entry[1]
    value = build()
    cache[key] = (stamp, value)
    return value


def _part_col(part, position: int):
    """The int64 ndarray for one column of *part*."""
    if isinstance(part, _DeltaPart):
        return part.cols[position]

    def build():
        if isinstance(part, ColumnarRelation):
            # A copy on purpose: a zero-copy frombuffer view would pin the
            # array('q') buffer and make every later append raise.
            return np.array(part.columns[position], dtype=np.int64)
        chunks = part.col_chunks[position]
        return chunks[0] if len(chunks) == 1 else np.concatenate(chunks)

    return _cached(part, ("col", position), build)


def _part_keys_sorted(part):
    """The part's unseeded packed keys as a sorted int64 array."""

    def build():
        if isinstance(part, _DeltaPart):
            keys = part.keys
        elif isinstance(part, _VecGroup):
            if not part.key_chunks:
                return np.empty(0, dtype=np.int64)
            keys = (
                part.key_chunks[0]
                if len(part.key_chunks) == 1
                else np.concatenate(part.key_chunks)
            )
        else:
            keys = _pack_part(part)
        return np.sort(keys)

    return _cached(part, ("keys_sorted",), build)


def _pack_part(part):
    """Fold a part's columns into unseeded int64 keys (vectorized)."""
    arity = part.arity
    if arity == 0:
        return np.zeros(_part_len(part), dtype=np.int64)
    keys = _part_col(part, 0).copy()
    for position in range(1, arity):
        keys <<= KEY_BITS
        keys |= _part_col(part, position)
    return keys


def _part_csr(part, position: int):
    """CSR probe index: (distinct codes, starts, counts, row order, all-one).

    The trailing flag records that every code occurs exactly once — the
    shape of a chain/tree edge column — which lets :func:`_expand` skip
    the repeat/cumsum expansion entirely.
    """

    def build():
        column = _part_col(part, position)
        order = np.argsort(column, kind="stable")
        sorted_codes = column[order]
        uniq, starts = np.unique(sorted_codes, return_index=True)
        counts = np.diff(np.append(starts, len(column)))
        all_one = len(counts) > 0 and int(counts.max()) == 1
        return uniq, starts, counts, order, all_one

    return _cached(part, ("csr", position), build)


def _in_sorted(values, sorted_arr):
    """Boolean membership of *values* (any order) in a sorted array."""
    m = len(sorted_arr)
    if m == 0 or len(values) == 0:
        return np.zeros(len(values), dtype=bool)
    idx = np.searchsorted(sorted_arr, values)
    np.minimum(idx, m - 1, out=idx)
    return sorted_arr[idx] == values


def _expand(csr, values):
    """Probe every value through the CSR index; returns (rows, origins).

    ``rows[i]`` is a matched part row and ``origins[i]`` the batch row it
    answers — the ndarray form of "for each batch row, all index hits".
    """
    uniq, starts, counts, order, all_one = csr
    m = len(uniq)
    if m == 0 or len(values) == 0:
        return None
    idx = np.searchsorted(uniq, values)
    np.minimum(idx, m - 1, out=idx)
    valid = uniq[idx] == values
    if all_one:
        # Unique probe column: each hit expands to exactly one row, so the
        # match set is a pair of gathers instead of a repeat/cumsum fan-out.
        rows = order[starts[idx[valid]]]
        if len(rows) == 0:
            return None
        return rows, np.nonzero(valid)[0]
    hit_counts = np.where(valid, counts[idx], 0)
    total = int(hit_counts.sum())
    if total == 0:
        return None
    offsets = np.cumsum(hit_counts) - hit_counts
    within = np.arange(total, dtype=np.int64) - np.repeat(offsets, hit_counts)
    rows = order[np.repeat(starts[idx], hit_counts) + within]
    origins = np.repeat(np.arange(len(values), dtype=np.int64), hit_counts)
    return rows, origins


def _rows_for_code(part, position: int, code: int):
    """All part rows whose column equals *code* (PROBE_CONST candidates)."""
    uniq, starts, counts, order, _ = _part_csr(part, position)
    idx = int(np.searchsorted(uniq, code)) if len(uniq) else 0
    if idx >= len(uniq) or int(uniq[idx]) != code:
        return None
    start = int(starts[idx])
    return order[start : start + int(counts[idx])]


# ----------------------------------------------------------------------
# The working set
# ----------------------------------------------------------------------
#: Largest dense membership domain (in bools) a head relation may claim.
#: ``(codes + 1) ** arity`` below this bound gets a bitmap whose scatter
#: and gather are O(batch) with no per-key hashing at all; anything wider
#: falls back to key sets and sorted-array membership.
_BITMAP_DOMAIN_MAX = 1 << 22


class _VectorWorking:
    """Columnar working state for one evaluation on the vector lane."""

    __slots__ = (
        "database",
        "table",
        "local",
        "_parts",
        "_member",
        "_fact_rows",
        "_fact_keys",
    )

    def __init__(self, database):
        self.database = database
        self.table = database.columnar_store().table
        self.local: Dict[Tuple[str, int], _VecGroup] = {}
        self._parts: Dict[Tuple[str, int], tuple] = {}
        # (predicate, arity) -> (bitmap, base_dim) | None (fallback dedup).
        self._member: Dict[Tuple[str, int], Optional[tuple]] = {}
        # Fact-rule rows accumulate in plain lists and seal into ndarray
        # chunks before the fixpoint starts.
        self._fact_rows: Dict[Tuple[str, int], Tuple[List, ...]] = {}
        self._fact_keys: Dict[Tuple[str, int], set] = {}

    def parts(self, predicate: str, arity: int) -> tuple:
        cached = self._parts.get((predicate, arity))
        if cached is None:
            groups = [
                group
                for group in self.database.columnar_parts(predicate)
                if group.arity == arity
            ]
            local = self.local.get((predicate, arity))
            if local is not None:
                groups.append(local)
            cached = self._parts[(predicate, arity)] = tuple(groups)
        return cached

    def membership(self, predicate: str, arity: int) -> Optional[tuple]:
        """The dense seen-bitmap for one head relation, or None.

        Built on first dedup of the relation, seeded with every row already
        live in its parts.  Codes are stable by then — a stratum's kernels
        intern their constants before any rule fires — so the domain
        ``(len(table) + 1) ** arity`` can never be outgrown.  All rows that
        appear later are marked by :func:`_dedup` itself as they are found
        fresh, which also gives cross-rule bucket dedup for free.
        """
        key = (predicate, arity)
        entry = self._member.get(key, _UNSET)
        if entry is not _UNSET:
            return entry
        entry = None
        if 1 <= arity <= 2:
            base_dim = len(self.table) + 1
            domain = base_dim**arity
            if domain <= _BITMAP_DOMAIN_MAX:
                seen = np.zeros(domain, dtype=bool)
                for part in self.parts(predicate, arity):
                    if _part_len(part) == 0:
                        continue
                    keys = _pack_part(part)
                    if arity == 2:
                        seen[(keys >> KEY_BITS) * base_dim + (keys & _KEY_MASK)] = True
                    else:
                        seen[keys] = True
                # Scratch lane for batch-internal dedup: _dedup scatters the
                # batch positions and keeps, per distinct key, only the row
                # that won the scatter — no sort needed.  Only slots written
                # in the same round are ever read back, so staleness across
                # rounds is harmless.
                scratch = np.empty(domain, dtype=np.int64)
                entry = (seen, base_dim, scratch)
        self._member[key] = entry
        return entry

    def group(self, predicate: str, arity: int) -> _VecGroup:
        group = self.local.get((predicate, arity))
        if group is None:
            group = self.local[(predicate, arity)] = _VecGroup(arity)
            self._parts.pop((predicate, arity), None)
        return group

    def add_fact(self, predicate: str, values: tuple) -> bool:
        """One ground fact (the fact-rule loading path); returns is-new."""
        codes = [self.table.intern(value) for value in values]
        arity = len(codes)
        seeded = pack_codes(codes)
        for part in self.database.columnar_parts(predicate):
            if part.arity == arity and seeded in part.keys:
                return False
        key = _unseed(seeded, arity)
        seen = self._fact_keys.setdefault((predicate, arity), set())
        if key in seen:
            return False
        seen.add(key)
        rows = self._fact_rows.get((predicate, arity))
        if rows is None:
            rows = self._fact_rows[(predicate, arity)] = tuple([] for _ in range(arity))
        for position, code in enumerate(codes):
            rows[position].append(code)
        return True

    def seal_facts(self) -> None:
        for (predicate, arity), rows in self._fact_rows.items():
            group = self.group(predicate, arity)
            if arity == 0:
                group.append((), np.zeros(1, dtype=np.int64))
                continue
            cols = tuple(np.array(column, dtype=np.int64) for column in rows)
            # Keys rebuilt from the columns so row order matches everywhere.
            keys = cols[0].copy()
            for position in range(1, arity):
                keys <<= KEY_BITS
                keys |= cols[position]
            group.append(cols, keys)
        self._fact_rows.clear()
        self._fact_keys.clear()


def _step_parts(step, working: _VectorWorking, delta):
    if not step.use_delta:
        return working.parts(step.predicate, step.arity)
    groups = delta.get(step.predicate) if delta else None
    if not groups:
        return ()
    part = groups.get(step.arity)
    return (part,) if part is not None else ()


# ----------------------------------------------------------------------
# Step execution
# ----------------------------------------------------------------------
def _match_part(step, part, cols, n: int):
    """(rows, origins) of all matches of one step against one part."""
    kind = step.probe_kind
    if kind == PROBE_SLOT:
        hit = _expand(_part_csr(part, step.probe_position), cols[step.probe_slot])
        if hit is None:
            return None
        rows, origins = hit
    else:
        if kind == PROBE_CONST:
            candidates = _rows_for_code(part, step.probe_position, step.probe_code)
            if candidates is None or len(candidates) == 0:
                return None
        else:
            candidates = np.arange(_part_len(part), dtype=np.int64)
            if len(candidates) == 0:
                return None
        k = len(candidates)
        rows = np.tile(candidates, n)
        origins = np.repeat(np.arange(n, dtype=np.int64), k)
    mask = None
    for position, code in step.const_checks:
        check = _part_col(part, position)[rows] == code
        mask = check if mask is None else (mask & check)
    for position, other in step.self_checks:
        check = _part_col(part, position)[rows] == _part_col(part, other)[rows]
        mask = check if mask is None else (mask & check)
    for position, slot in step.slot_checks:
        check = _part_col(part, position)[rows] == cols[slot][origins]
        mask = check if mask is None else (mask & check)
    if mask is not None:
        rows = rows[mask]
        origins = origins[mask]
        if len(rows) == 0:
            return None
    return rows, origins


def _run_step(step, parts, cols, n: int):
    """Join the batch against one atom; returns the next (cols, n)."""
    if (
        n == 1
        and step.probe_kind == PROBE_SCAN
        and not step.carry_slots
        and not step.const_checks
        and not step.self_checks
        and not step.slot_checks
    ):
        # Unfiltered scan of an empty batch — the shape of every delta
        # variant's first step.  With a single live part the bound columns
        # *are* the part's columns: alias them instead of tiling row ids
        # and gathering (the per-round copies would dwarf tiny deltas).
        live = [part for part in parts if _part_len(part)]
        if not live:
            return {}, 0
        if len(live) == 1:
            part = live[0]
            return (
                {slot: _part_col(part, position) for position, slot in step.binds},
                _part_len(part),
            )
    slots = list(step.carry_slots) + [slot for _, slot in step.binds]
    gathered: Dict[int, List] = {slot: [] for slot in slots}
    matches = 0
    for part in parts:
        if _part_len(part) == 0:
            continue
        hit = _match_part(step, part, cols, n)
        if hit is None:
            continue
        rows, origins = hit
        matches += len(rows)
        for slot in step.carry_slots:
            gathered[slot].append(cols[slot][origins])
        for position, slot in step.binds:
            gathered[slot].append(_part_col(part, position)[rows])
    if matches == 0:
        return {}, 0
    out = {
        slot: (chunks[0] if len(chunks) == 1 else np.concatenate(chunks))
        for slot, chunks in gathered.items()
    }
    return out, matches


def _run_leaf(leaf, parts, cols, n: int, head_arity: int):
    """Fused leaf join + packed head emission; returns (emitted, firings)."""
    base = _unseed(leaf.base_key, head_arity)
    weights = [1 << (KEY_BITS * (head_arity - 1 - j)) for j in range(head_arity)]
    emitted: List = []
    firings = 0
    for part in parts:
        if _part_len(part) == 0:
            continue
        if leaf.identity:
            keys = _pack_part(part)
            emitted.append(keys)
            firings += len(keys)
            continue
        hit = _match_part(leaf, part, cols, n)
        if hit is None:
            continue
        rows, origins = hit
        # Fused emission: each gather already yields a fresh array, so the
        # first term is accumulated in place and the base is added only
        # when the head carries a constant lane.
        keys = None
        for slot, weight in leaf.carry_weights:
            term = cols[slot][origins]
            if weight != 1:
                term = term * weight
            if keys is None:
                keys = term
            else:
                keys += term
        for position, weight in leaf.leaf_weights:
            term = _part_col(part, position)[rows]
            if weight != 1:
                term = term * weight
            if keys is None:
                keys = term
            else:
                keys += term
        if keys is None:
            keys = np.full(len(rows), base, dtype=np.int64)
        elif base:
            keys += base
        emitted.append(keys)
        firings += len(keys)
    if not emitted:
        return None, 0
    return (emitted[0] if len(emitted) == 1 else np.concatenate(emitted)), firings


def _run_anti_step(step, working, cols, n: int):
    """Filter the batch by absence from the negated relation; next (cols, n).

    Membership goes through the dense bitmap when the negated relation has
    one (O(batch) gather, no hashing) and through sorted-key
    ``searchsorted`` otherwise.  The relation is closed below this stratum,
    so reading the bitmap (or building it now) is sound — it cannot grow.
    """
    arity = step.arity
    keys = np.full(n, step.base_key - (arity << (KEY_BITS * arity)), dtype=np.int64)
    for slot, weight in step.slot_weights:
        if weight == 1:
            keys += cols[slot]
        else:
            keys += cols[slot] * weight
    member = working.membership(step.predicate, arity)
    if member is not None:
        # The bitmap's domain was sized when it was built; later strata may
        # intern new constants, so probe codes can exceed ``base_dim``.
        # Those rows are definitively absent — the relation is closed, so
        # every code it holds predates the bitmap — and must not be
        # gathered (they would alias in-domain slots or index out of range).
        seen, base_dim, _ = member
        if arity == 2:
            lane_hi = keys >> KEY_BITS
            lane_lo = keys & _KEY_MASK
            in_range = (lane_hi < base_dim) & (lane_lo < base_dim)
            compact = np.where(in_range, lane_hi * base_dim + lane_lo, 0)
        else:
            in_range = keys < base_dim
            compact = np.where(in_range, keys, 0)
        mask = ~(in_range & seen[compact])
    else:
        present = np.zeros(n, dtype=bool)
        for part in working.parts(step.predicate, arity):
            if _part_len(part) == 0:
                continue
            present |= _in_sorted(keys, _part_keys_sorted(part))
        mask = ~present
    kept = int(mask.sum())
    if kept == n:
        return cols, n
    if kept == 0:
        return cols, 0
    filtered = {slot: column[mask] for slot, column in cols.items()}
    return filtered, kept


def _run_emit_leaf(leaf, cols, n: int, head_arity: int):
    """Emit one head key per surviving row (orders ending on an anti step)."""
    keys = np.full(n, _unseed(leaf.base_key, head_arity), dtype=np.int64)
    for slot, weight in leaf.carry_weights:
        if weight == 1:
            keys += cols[slot]
        else:
            keys += cols[slot] * weight
    return keys, n


def _run_sequence(sequence, working, delta, head_arity: int):
    """Run one lowered order; returns (emitted keys ndarray | None, firings)."""
    if sequence.leaf is None:
        key = _unseed(sequence.ground_key, head_arity)
        return np.array([key], dtype=np.int64), 1
    cols: Dict[int, object] = {}
    n = 1
    for step in sequence.steps:
        if type(step) is _BatchAntiStep:
            cols, n = _run_anti_step(step, working, cols, n)
        else:
            cols, n = _run_step(step, _step_parts(step, working, delta), cols, n)
        if not n:
            return None, 0
    leaf = sequence.leaf
    if type(leaf) is _EmitLeaf:
        return _run_emit_leaf(leaf, cols, n, head_arity)
    return _run_leaf(leaf, _step_parts(leaf, working, delta), cols, n, head_arity)


#: Candidate batches at or below this size check local-group membership
#: through the Python key set (O(batch)); larger batches amortise a sorted
#: snapshot better and keep the searchsorted path.
_SET_DEDUP_MAX = 2048


def _dedup(working, predicate: str, arity: int, emitted, bucket: List):
    """Distinct new keys of *emitted* vs the bucket and all live parts."""
    member = working.membership(predicate, arity)
    if member is not None:
        # Dense path: one gather answers membership against everything ever
        # seen (base parts, committed rounds, and this round's bucket);
        # batch-internal duplicates collapse by electing, per distinct key,
        # the emission that won the scratch scatter; one scatter then marks
        # the survivors.
        seen, base_dim, scratch = member
        if arity == 2:
            compact = (emitted >> KEY_BITS) * base_dim + (emitted & _KEY_MASK)
        else:
            compact = emitted
        positions = np.arange(len(emitted), dtype=np.int64)
        scratch[compact] = positions
        mask = (scratch[compact] == positions) & ~seen[compact]
        fresh = emitted[mask]
        if len(fresh):
            seen[compact[mask]] = True
        return fresh
    candidates = np.unique(emitted)
    for fresh in bucket:
        if len(candidates) == 0:
            break
        candidates = candidates[~_in_sorted(candidates, fresh)]
    for part in working.parts(predicate, arity):
        if len(candidates) == 0:
            break
        if isinstance(part, _VecGroup) and len(candidates) <= _SET_DEDUP_MAX:
            key_set = part.ensure_key_set()
            if key_set:
                kept = [key for key in candidates.tolist() if key not in key_set]
                if len(kept) != len(candidates):
                    candidates = np.array(kept, dtype=np.int64)
        else:
            candidates = candidates[~_in_sorted(candidates, _part_keys_sorted(part))]
    return candidates


# ----------------------------------------------------------------------
# Rule firing
# ----------------------------------------------------------------------
def _fire(batch, sequence, working, delta, buckets, statistics) -> None:
    predicate = batch.kernel.rule.head.predicate
    arity = batch.head_arity
    emitted, firings = _run_sequence(sequence, working, delta, arity)
    if emitted is None:
        statistics.record_batch(predicate, 0, 0)
        return
    bucket = buckets.setdefault((predicate, arity), [])
    fresh = _dedup(working, predicate, arity, emitted, bucket)
    new = len(fresh)
    if new:
        bucket.append(fresh)
    statistics.record_batch(predicate, int(firings), int(new))


def _fire_static(batch, working, buckets, statistics) -> None:
    static, _ = batch.sequences(working.table)
    _fire(batch, static, working, None, buckets, statistics)


def _fire_delta(batch, rule, working, delta, delta_predicates, buckets, statistics):
    _, variants = batch.sequences(working.table)
    for position in batch.kernel.delta_positions:
        if rule.body[position].predicate not in delta_predicates:
            continue
        _fire(batch, variants[position], working, delta, buckets, statistics)


def _commit(working: _VectorWorking, buckets, build_delta: bool):
    """Append each bucket's fresh keys as columns; returns (delta, added)."""
    delta: Dict[str, Dict[int, _DeltaPart]] = {}
    added = 0
    for (predicate, arity), chunks in buckets.items():
        if not chunks:
            continue
        keys = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
        cols = tuple(
            (keys >> (KEY_BITS * (arity - 1 - j))) & _KEY_MASK for j in range(arity)
        )
        working.group(predicate, arity).append(cols, keys)
        if build_delta:
            delta.setdefault(predicate, {})[arity] = _DeltaPart(arity, cols, keys)
        added += len(keys)
    return delta, added


def _decode_idb(working: _VectorWorking, database, idb_predicates) -> Database:
    """The IDB model as a database (mirrors working.restrict), decoded lazily.

    The EDB contribution is snapshotted *now* (the input database may be
    mutated after the evaluation returns); the derived columns — the bulk
    of the model, already immutable — decode on first read.
    """
    relations: Dict[str, set] = {
        predicate: set(database.relation(predicate)) for predicate in idb_predicates
    }

    def decode() -> Dict[str, set]:
        values = np.fromiter(
            working.table.values(), dtype=object, count=len(working.table)
        )
        for (predicate, arity), group in working.local.items():
            if predicate not in relations or group.nrows == 0:
                continue
            tuples = relations[predicate]
            if arity == 0:
                tuples.add(())
                continue
            object_cols = [
                values[_part_col(group, position)] for position in range(arity)
            ]
            tuples.update(zip(*[column.tolist() for column in object_cols]))
        return {predicate: tuples for predicate, tuples in relations.items() if tuples}

    return LazyDecodedDatabase.defer(decode)


# ----------------------------------------------------------------------
# Fixpoint drivers (mirror engine/seminaive.py and engine/naive.py)
# ----------------------------------------------------------------------
def _stratum_kernels(plan, stratum, table):
    kernels = [(rule, plan.kernel(rule).batch_kernel()) for rule in stratum.rules]
    # Lower every sequence up front: lowering interns head/body constants,
    # and the dense dedup bitmaps size themselves from the intern table at
    # first use — all of a stratum's codes must exist before any rule fires.
    for _, batch in kernels:
        batch.sequences(table)
    return kernels


def evaluate_seminaive(
    program, database, plan, statistics, max_iterations: Optional[int], guard=None
) -> EvaluationResult:
    idb_predicates = program.idb_predicates()
    working = _VectorWorking(database)

    fact_rules, _ = split_rules(program)
    for rule in fact_rules:
        statistics.record_firing()
        is_new = working.add_fact(rule.head.predicate, rule.head.as_fact_tuple())
        statistics.record_fact(rule.head.predicate, is_new)
    working.seal_facts()

    def check_budget() -> None:
        if guard is not None:
            guard.checkpoint(statistics)
        if max_iterations is not None and statistics.iterations > max_iterations:
            raise EvaluationError(
                f"semi-naive evaluation exceeded {max_iterations} iterations"
            )

    for stratum in plan.strata:
        statistics.record_stratum()
        label = stratum.label
        kernels = _stratum_kernels(plan, stratum, working.table)

        statistics.record_iteration(label)
        check_budget()
        buckets: Dict[Tuple[str, int], List] = {}
        for rule, batch in kernels:
            if guard is not None:
                guard.checkpoint(statistics)
            _fire_static(batch, working, buckets, statistics)
        delta, added = _commit(working, buckets, build_delta=True)

        if not stratum.recursive:
            continue

        while added:
            statistics.record_iteration(label)
            check_budget()
            buckets = {}
            delta_predicates = set(delta)
            for rule, batch in kernels:
                if guard is not None:
                    guard.checkpoint(statistics)
                _fire_delta(
                    batch, rule, working, delta, delta_predicates, buckets, statistics
                )
            delta, added = _commit(working, buckets, build_delta=True)

    idb_facts = _decode_idb(working, database, idb_predicates)
    return EvaluationResult(program, database, idb_facts, statistics)


def evaluate_naive(
    program, database, plan, statistics, max_iterations: Optional[int], guard=None
) -> EvaluationResult:
    working = _VectorWorking(database)

    fact_rules, _ = split_rules(program)
    for rule in fact_rules:
        is_new = working.add_fact(rule.head.predicate, rule.head.as_fact_tuple())
        statistics.record_firing()
        statistics.record_fact(rule.head.predicate, is_new)
    working.seal_facts()

    for stratum in plan.strata:
        statistics.record_stratum()
        kernels = _stratum_kernels(plan, stratum, working.table)
        changed = True
        while changed:
            statistics.record_iteration(stratum.label)
            if guard is not None:
                guard.checkpoint(statistics)
            if max_iterations is not None and statistics.iterations > max_iterations:
                raise EvaluationError(
                    f"naive evaluation exceeded {max_iterations} iterations"
                )
            buckets: Dict[Tuple[str, int], List] = {}
            for rule, batch in kernels:
                if guard is not None:
                    guard.checkpoint(statistics)
                _fire_static(batch, working, buckets, statistics)
            _, added = _commit(working, buckets, build_delta=False)
            changed = added > 0
            if not stratum.recursive:
                break

    idb_facts = _decode_idb(working, database, program.idb_predicates())
    return EvaluationResult(program, database, idb_facts, statistics)
