"""One relation at one arity as parallel int columns.

A :class:`ColumnarRelation` stores the rows of a single predicate at a
single arity as per-position ``array('q')`` columns of intern codes,
plus two acceleration structures:

* a **packed row-key set** — every row folded into one Python int
  (:func:`pack_codes`), giving O(1) membership and C-speed set
  difference for dedup; keys are arity-seeded, so keys from relations
  of different arities can never collide inside a shared bucket;
* **lazy per-position hash indexes** — ``code -> [row ids]``, built on
  first probe of a position and maintained on append, mirroring the
  tuple layout's persistent indexes.

Rows are append-only: the tuple layout remains the source of truth, and
retractions invalidate the whole columnar mirror of a predicate rather
than deleting in place (see :mod:`repro.datalog.columnar.store`).
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, List, Sequence, Tuple

#: Bits reserved per column in a packed row key.  Codes are dense intern
#: indexes, so 32 bits covers 4G distinct constants; keys of arity-k rows
#: are arbitrary-precision ints of ~32*(k+1) bits (the +1 is the arity
#: seed), which Python handles natively.
KEY_BITS = 32
_KEY_MASK = (1 << KEY_BITS) - 1


def pack_codes(codes: Sequence[int]) -> int:
    """Fold a code row into one arity-seeded int key.

    The layout is ``arity | c0 | c1 | ...`` in 32-bit lanes: the arity
    seed occupies the top lane, so ``(5,)`` and ``(0, 5)`` pack to
    different keys and a per-predicate bucket may safely mix arities.
    """
    key = len(codes)
    for code in codes:
        key = (key << KEY_BITS) | code
    return key


def arity_of_key(key: int) -> int:
    """Recover the arity seed from a packed key (0 for the empty row)."""
    if key == 0:
        return 0
    return (key.bit_length() - 1) // KEY_BITS


def unpack_key(key: int, arity: int) -> Tuple[int, ...]:
    """The code row behind a packed key of known arity."""
    codes = []
    for position in range(arity - 1, -1, -1):
        codes.append((key >> (KEY_BITS * position)) & _KEY_MASK)
    return tuple(codes)


class ColumnarRelation:
    """Append-only columnar rows of one predicate at one arity."""

    __slots__ = ("arity", "columns", "keys", "_indexes", "_distinct", "_np")

    def __init__(self, arity: int):
        self.arity = arity
        self.columns: Tuple[array, ...] = tuple(array("q") for _ in range(arity))
        self.keys: set = set()
        # position -> code -> list of row ids (built lazily, maintained on append)
        self._indexes: Dict[int, Dict[int, List[int]]] = {}
        self._distinct: Dict[int, int] = {}
        # Vector-lane caches (ndarray copies of columns, sorted key arrays,
        # CSR probe indexes), keyed by (kind, position) with a row-count
        # stamp — appends simply make stale entries miss.  Owned here so the
        # caches survive across evaluations; see columnar/vector.py.
        self._np: Dict[tuple, tuple] = {}

    def __len__(self) -> int:
        return len(self.columns[0]) if self.arity else (1 if self.keys else 0)

    def append_rows(self, rows: Iterable[Sequence[int]]) -> int:
        """Append code rows not already present; returns how many were new."""
        added = 0
        for codes in rows:
            key = pack_codes(codes)
            if key in self.keys:
                continue
            self.keys.add(key)
            for position, code in enumerate(codes):
                self.columns[position].append(code)
            added += 1
        if added:
            self._note_appended(len(self) - added)
            self._distinct.clear()
        return added

    def extend_columns(self, columns: Sequence[Sequence[int]], keys: Iterable[int]) -> None:
        """Bulk append of pre-deduped parallel columns (the round commit path).

        *keys* must be the packed keys of exactly the rows in *columns*,
        already known to be absent — the batch fixpoint dedups against
        :attr:`keys` before committing, so no per-row re-check happens here.
        """
        start = len(self)
        for position, column in enumerate(columns):
            self.columns[position].extend(column)
        self.keys.update(keys)
        self._note_appended(start)
        self._distinct.clear()

    def _note_appended(self, start: int) -> None:
        """Maintain already-built indexes for rows appended at *start*."""
        for position, index in self._indexes.items():
            column = self.columns[position]
            for row in range(start, len(column)):
                bucket = index.get(column[row])
                if bucket is None:
                    index[column[row]] = [row]
                else:
                    bucket.append(row)

    def index(self, position: int) -> Dict[int, List[int]]:
        """The hash index ``code -> [row ids]`` at *position* (built lazily)."""
        index = self._indexes.get(position)
        if index is None:
            index = {}
            for row, code in enumerate(self.columns[position]):
                bucket = index.get(code)
                if bucket is None:
                    index[code] = [row]
                else:
                    bucket.append(row)
            self._indexes[position] = index
        return index

    def distinct(self, position: int) -> int:
        """Number of distinct codes at *position* (cached until mutation).

        This is the column statistic the planner's column-aware cost model
        reads; served from a built index when one exists, else from one
        C-level ``set()`` pass over the column.
        """
        cached = self._distinct.get(position)
        if cached is None:
            index = self._indexes.get(position)
            cached = len(index) if index is not None else len(set(self.columns[position]))
            self._distinct[position] = cached
        return cached

    def row(self, row_id: int) -> Tuple[int, ...]:
        """The code row at *row_id*."""
        return tuple(column[row_id] for column in self.columns)

    def __contains__(self, codes: Sequence[int]) -> bool:
        return pack_codes(codes) in self.keys

    def __repr__(self) -> str:
        return f"ColumnarRelation(arity={self.arity}, rows={len(self)})"
