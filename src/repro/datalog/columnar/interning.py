"""Constant interning: domain values ↔ dense integer codes.

An :class:`InternTable` is the dictionary-encoding half of the columnar
layout: every constant that appears in a relation is assigned a small
dense int on first sight, columns store only the ints, and joins compare
ints instead of hashing arbitrary Python values.  Tables are plain
instances — there is deliberately no process-wide table, so independent
databases cannot leak domains into each other and tests stay hermetic.

Equality semantics are inherited from Python, on purpose: the tuple
layout stores facts in ``set``s, where ``1``, ``True`` and ``1.0`` are
the *same* element (equal values, equal hashes — the first one inserted
is the representative).  The table therefore keys codes by the plain
value, so two values receive the same code exactly when the tuple layout
would consider the facts equal.  That is what makes the columnar path
observationally identical to the tuple path rather than subtly stricter.

Round-trips hold for every codec-native value (``None``/``bool``/``int``
/``float``/``str``/``bytes`` and nested ``tuple`` containers — anything
:func:`repro.datalog.database.pack_value` accepts and hashes): interning
is append-only, so a code, once issued, maps back to the first-seen
representative forever, including across :meth:`Database.copy` (copies
share the table).
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional


class InternTable:
    """Append-only bijection between hashable constants and dense ints."""

    __slots__ = ("_codes", "_values", "_lock")

    def __init__(self):
        self._codes: Dict[object, int] = {}
        self._values: List[object] = []
        # intern() may race when concurrent evaluations encode fresh EDB
        # predicates over a shared base table (the service layer's readers);
        # lookups stay lock-free — dict.get is atomic under the GIL and the
        # table never shrinks.
        self._lock = threading.Lock()

    def intern(self, value) -> int:
        """The code for *value*, assigning the next dense int on first sight."""
        code = self._codes.get(value)
        if code is not None:
            return code
        with self._lock:
            code = self._codes.get(value)
            if code is None:
                code = len(self._values)
                self._values.append(value)
                self._codes[value] = code
            return code

    def intern_many(self, values) -> List[int]:
        """Codes for an iterable of values, in order."""
        return [self.intern(value) for value in values]

    def lookup(self, value) -> Optional[int]:
        """The code for *value* if already interned, else ``None``."""
        return self._codes.get(value)

    def value(self, code: int):
        """The representative value behind *code* (inverse of :meth:`intern`)."""
        return self._values[code]

    def values(self) -> List[object]:
        """The live code→value list (read-only; index = code)."""
        return self._values

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value) -> bool:
        return value in self._codes

    def __repr__(self) -> str:
        return f"InternTable(size={len(self._values)})"
