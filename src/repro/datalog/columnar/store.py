"""The per-database columnar mirror: predicates encoded lazily, kept fresh.

A :class:`ColumnarStore` shadows one :class:`~repro.datalog.database.Database`
with interned :class:`~repro.datalog.columnar.relation.ColumnarRelation`
groups.  The tuple relations stay the source of truth; the store is an
acceleration structure with the same lifecycle as the database's hash
indexes:

* a predicate is **encoded on first use** (one pass interning every value
  and packing every row);
* encoded predicates are **maintained incrementally** by the database's
  mutation hooks — appends extend the columns, removals simply drop the
  predicate's encoding so the next use re-encodes (retractions are rare
  and batch-shaped; in-place columnar deletes are not worth their
  bookkeeping);
* ``Database.copy()`` **shares the intern table** with the clone (codes
  are append-only, so ordering is stable across copies) but re-encodes
  relations lazily, and an overlay's store chains to its base's so seed
  facts intern through the overlay into the same code space.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.datalog.columnar.interning import InternTable
from repro.datalog.columnar.relation import ColumnarRelation

_EMPTY_PARTS: Tuple[ColumnarRelation, ...] = ()


class ColumnarStore:
    """Lazily encoded, incrementally maintained columnar view of a database."""

    __slots__ = ("_database", "table", "_groups")

    def __init__(self, database, table: Optional[InternTable] = None):
        self._database = database
        self.table = table if table is not None else InternTable()
        # predicate -> arity -> ColumnarRelation (only encoded predicates appear)
        self._groups: Dict[str, Dict[int, ColumnarRelation]] = {}

    def fork(self, database) -> "ColumnarStore":
        """A store for a copy of the owning database, sharing the intern table."""
        return ColumnarStore(database, table=self.table)

    def encoded(self, predicate: str) -> bool:
        """Whether *predicate* currently has a live columnar encoding."""
        return predicate in self._groups

    def parts(self, predicate: str) -> Tuple[ColumnarRelation, ...]:
        """The arity groups of *predicate*, encoding it on first use."""
        groups = self._groups.get(predicate)
        if groups is None:
            groups = self._encode(predicate)
        return tuple(groups.values())

    def group(self, predicate: str, arity: int) -> Optional[ColumnarRelation]:
        """The single arity group of *predicate*, or ``None`` when empty."""
        groups = self._groups.get(predicate)
        if groups is None:
            groups = self._encode(predicate)
        return groups.get(arity)

    def _encode(self, predicate: str) -> Dict[int, ColumnarRelation]:
        intern = self.table.intern
        groups: Dict[int, ColumnarRelation] = {}
        for values in self._database._relations.get(predicate, ()):
            group = groups.get(len(values))
            if group is None:
                group = groups[len(values)] = ColumnarRelation(len(values))
            group.append_rows(([intern(value) for value in values],))
        self._groups[predicate] = groups
        return groups

    # ------------------------------------------------------------------
    # Maintenance hooks (called by Database mutation paths)
    # ------------------------------------------------------------------
    def note_added(self, predicate: str, fresh) -> None:
        """Append tuples to an already-encoded predicate (no-op otherwise).

        *fresh* has already been deduped against the tuple relation by the
        caller, and encoded groups mirror that relation exactly, so the
        append cannot introduce duplicate rows.
        """
        groups = self._groups.get(predicate)
        if groups is None:
            return
        intern = self.table.intern
        for values in fresh:
            group = groups.get(len(values))
            if group is None:
                group = groups[len(values)] = ColumnarRelation(len(values))
            group.append_rows(([intern(value) for value in values],))

    def invalidate(self, predicate: str) -> None:
        """Drop a predicate's encoding (re-encoded lazily on next use)."""
        self._groups.pop(predicate, None)

    def column_distincts(self, predicate: str) -> Dict[int, int]:
        """Per-position distinct-code counts for the dominant arity group.

        The planner's column-aware cost model divides a relation's
        cardinality by the probe column's distinct count to estimate the
        rows per probe hit.  Mixed-arity relations report the group with
        the most rows — the one that dominates the join cost.
        """
        parts = self.parts(predicate)
        if not parts:
            return {}
        dominant = max(parts, key=len)
        return {
            position: dominant.distinct(position) for position in range(dominant.arity)
        }

    def __repr__(self) -> str:
        encoded = ", ".join(sorted(self._groups))
        return f"ColumnarStore(table={self.table!r}, encoded=[{encoded}])"
