"""Columnar interned relations and vectorized batch kernels.

The tuple layout (:class:`repro.datalog.database.Database`) stores every
relation as a ``set`` of Python tuples and every kernel probe touches one
tuple at a time.  This package is the Soufflé/DuckDB-style alternative:

* :class:`~repro.datalog.columnar.interning.InternTable` — constants
  interned to dense ints (and back), round-trippable for every
  codec-native value;
* :class:`~repro.datalog.columnar.relation.ColumnarRelation` — one
  predicate at one arity as parallel ``array('q')`` columns with lazy
  per-position hash indexes over the int codes and a packed-int row-key
  set for O(1) membership;
* :class:`~repro.datalog.columnar.store.ColumnarStore` — the per-database
  columnar mirror, built lazily per predicate and maintained
  incrementally by the database's mutation hooks;
* :mod:`~repro.datalog.columnar.batch` — the batch fixpoint: the PR 4
  :class:`~repro.datalog.engine.executor.RuleKernel` step programs
  lowered to whole-column hash joins with int-set dedup.

The tuple layout stays the source of truth — ``layout="columnar"`` on a
:class:`~repro.datalog.database.Database` turns the mirror on and routes
eligible bottom-up evaluations through the batch path, with the tuple
kernels as the differential baseline and the fallback for programs the
batch path cannot take (parameters, adapter sources, interpreted mode).
"""

from repro.datalog.columnar.interning import InternTable
from repro.datalog.columnar.relation import (
    KEY_BITS,
    ColumnarRelation,
    arity_of_key,
    pack_codes,
    unpack_key,
)
from repro.datalog.columnar.store import ColumnarStore

__all__ = [
    "InternTable",
    "ColumnarRelation",
    "ColumnarStore",
    "KEY_BITS",
    "pack_codes",
    "unpack_key",
    "arity_of_key",
]
