"""Deferred decoding of columnar results back into value tuples.

The batch lanes finish an evaluation holding derived rows as intern-code
columns.  Materialising those into Python value tuples costs a dict/zip
pass over the whole model — often a third of a short evaluation — yet
many callers never read ``idb_facts`` at all (they re-evaluate, or read
only ``statistics``).  :class:`LazyDecodedDatabase` keeps the existing
``EvaluationResult`` contract (``idb_facts`` *is* a
:class:`~repro.datalog.database.Database`) while paying for decoding only
on first access: the relations mapping is produced by a thunk the first
time any reader touches ``_relations``.

Every public ``Database`` operation begins by reading ``self._relations``
(a data-descriptor property here), so materialisation is transparent to
equality checks, snapshots, copies, probes, and mutation alike.
"""

from __future__ import annotations

from typing import Callable, Dict, Set, Tuple

from repro.datalog.database import Database


class LazyDecodedDatabase(Database):
    """A database whose relation sets decode from columns on first read."""

    @property
    def _relations(self) -> Dict[str, Set[Tuple]]:
        thunk = self.__dict__.get("_decode_thunk")
        if thunk is not None:
            self.__dict__["_decode_thunk"] = None
            self.__dict__["_relations_store"] = thunk()
        return self.__dict__["_relations_store"]

    @_relations.setter
    def _relations(self, value: Dict[str, Set[Tuple]]) -> None:
        self.__dict__["_relations_store"] = value

    @classmethod
    def defer(cls, thunk: Callable[[], Dict[str, Set[Tuple]]]) -> "LazyDecodedDatabase":
        """Wrap *thunk* (returning adopt-style relation sets) lazily."""
        database = cls()
        database.__dict__["_decode_thunk"] = thunk
        return database
