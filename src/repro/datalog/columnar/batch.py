"""Vectorized batch evaluation: RuleKernel step programs over whole columns.

The PR 4 tuple kernels (:mod:`repro.datalog.engine.executor`) probe one
tuple at a time: every candidate pays a Python-level loop iteration, a
tuple hash for dedup and a closure call per firing.  This module reuses
the *same* compiled step programs — probe column, equality checks, bind
list, head extraction — but runs each step over the entire intermediate
batch at once:

* a **batch** is a set of parallel Python lists of intern codes, one per
  bound slot;
* a non-leaf step hash-joins the whole batch against the step's columnar
  parts (grouped index probes, cross-products as list comprehensions);
* the **leaf step is fused with head extraction**: because packed row
  keys are positional 32-bit lanes (:func:`~repro.datalog.columnar.relation.pack_codes`),
  a head key decomposes into ``carried_part(batch row) + leaf_part(matched
  row)``, so the innermost loop emits ready-packed int keys directly;
* dedup is pure C-speed int-set algebra: ``fresh = emitted - bucket -
  existing`` against the per-predicate packed-key sets.

Statistics parity with the tuple path is structural, not accidental: a
rule's firing count is the number of complete body matches — a
join-order- and batch-order-invariant multiset — and the per-round
"new" count is the bucket's growth, which only depends on the round's
start state.  The fixpoint drivers below mirror the tuple engines' loops
(`seminaive`/`naive`) line for line, so ``EvaluationStatistics`` come
out identical and the differential harness can assert full equality.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.datalog.columnar.relation import KEY_BITS, ColumnarRelation, pack_codes
from repro.datalog.database import Database
from repro.datalog.engine.base import EvaluationResult, split_rules
from repro.datalog.engine.executor import PROBE_CONST, PROBE_SCAN, PROBE_SLOT
from repro.errors import EvaluationError

_KEY_MASK = (1 << KEY_BITS) - 1


def plan_supported(plan) -> bool:
    """Whether every stratum rule has a compiled kernel to lower.

    Rules the tuple path itself cannot compile (un-internable terms such
    as raw :class:`~repro.datalog.terms.Parameter` atoms) keep the whole
    evaluation on the tuple fallback — mixing batch and interpreted rules
    in one fixpoint would mean maintaining two working sets in lockstep.
    """
    for stratum in plan.strata:
        for rule in stratum.rules:
            if plan.kernel(rule) is None:
                return False
    return True


# ----------------------------------------------------------------------
# Lowered step programs
# ----------------------------------------------------------------------
class _BatchStep:
    """A non-leaf step: join the batch against one atom's columnar parts."""

    __slots__ = (
        "use_delta",
        "predicate",
        "arity",
        "probe_kind",
        "probe_position",
        "probe_code",
        "probe_slot",
        "const_checks",
        "self_checks",
        "slot_checks",
        "carry_slots",
        "binds",
    )

    def __init__(self, step, table, bound):
        self.use_delta = step.use_delta
        self.predicate = step.predicate
        self.arity = step.arity
        self.probe_kind = step.probe_kind
        self.probe_position = step.probe_position
        self.probe_code = (
            table.intern(step.probe_value) if step.probe_kind == PROBE_CONST else -1
        )
        self.probe_slot = step.probe_slot
        self.const_checks = tuple((pos, table.intern(v)) for pos, v in step.const_checks)
        self.self_checks = step.self_checks
        self.slot_checks = step.slot_checks
        self.carry_slots = tuple(sorted(bound))
        self.binds = step.binds


class _BatchLeaf:
    """The final step fused with head extraction: emits packed head keys.

    The head key of a firing is ``base_key + Σ slot·weight (carried) +
    Σ column·weight (leaf-bound)`` — pure int arithmetic per matched row,
    no tuple is ever built for a duplicate.
    """

    __slots__ = (
        "use_delta",
        "predicate",
        "arity",
        "probe_kind",
        "probe_position",
        "probe_code",
        "probe_slot",
        "const_checks",
        "self_checks",
        "slot_checks",
        "base_key",
        "carry_weights",
        "leaf_weights",
        "identity",
    )

    def __init__(self, step, table, head_ops, single_step):
        self.use_delta = step.use_delta
        self.predicate = step.predicate
        self.arity = step.arity
        self.probe_kind = step.probe_kind
        self.probe_position = step.probe_position
        self.probe_code = (
            table.intern(step.probe_value) if step.probe_kind == PROBE_CONST else -1
        )
        self.probe_slot = step.probe_slot
        self.const_checks = tuple((pos, table.intern(v)) for pos, v in step.const_checks)
        self.self_checks = step.self_checks
        self.slot_checks = step.slot_checks

        head_arity = len(head_ops)
        weights = [1 << (KEY_BITS * (head_arity - 1 - j)) for j in range(head_arity)]
        bind_position = {slot: pos for pos, slot in step.binds}
        base = head_arity << (KEY_BITS * head_arity)
        carried: Dict[int, int] = {}
        leaf: Dict[int, int] = {}
        for j, (is_slot, payload) in enumerate(head_ops):
            if not is_slot:
                base += table.intern(payload) * weights[j]
            elif payload in bind_position:
                position = bind_position[payload]
                leaf[position] = leaf.get(position, 0) + weights[j]
            else:
                carried[payload] = carried.get(payload, 0) + weights[j]
        self.base_key = base
        self.carry_weights = tuple(carried.items())
        self.leaf_weights = tuple(leaf.items())
        # Copy rules (head = the scanned row, verbatim): the emitted keys
        # are exactly the part's packed-key set, so the whole run is set
        # algebra with no per-row work at all.
        self.identity = (
            single_step
            and step.probe_kind == PROBE_SCAN
            and not step.const_checks
            and not step.self_checks
            and not step.slot_checks
            and not carried
            and head_arity == step.arity
            and base == head_arity << (KEY_BITS * head_arity)
            and len(leaf) == head_arity
            and all(leaf.get(j) == weights[j] for j in range(head_arity))
        )


class _BatchAntiStep:
    """An anti-join filter: drop batch rows whose packed key is present.

    The negated literal is fully bound when it runs (planned orders place
    it behind the positives that bind it), so per batch row the step packs
    one key — ``base_key`` (arity tag + interned constants) plus the bound
    slots' codes at their positional weights — and keeps the row iff the
    key is absent from every part of the negated predicate's relation,
    which is fully closed (lower stratum or EDB).
    """

    __slots__ = ("predicate", "arity", "base_key", "slot_weights")

    def __init__(self, step, table):
        self.predicate = step.predicate
        self.arity = step.arity
        arity = step.arity
        weights = [1 << (KEY_BITS * (arity - 1 - j)) for j in range(arity)]
        base = arity << (KEY_BITS * arity)
        slot_weights: Dict[int, int] = {}
        for j, (is_slot, payload) in enumerate(step.anti_ops):
            if is_slot:
                slot_weights[payload] = slot_weights.get(payload, 0) + weights[j]
            else:
                base += table.intern(payload) * weights[j]
        self.base_key = base
        self.slot_weights = tuple(slot_weights.items())


class _EmitLeaf:
    """A synthetic leaf for orders that end on an anti step.

    The fused :class:`_BatchLeaf` emits head keys while joining the last
    *positive* atom; when trailing anti filters follow that join, fusion is
    off the table — every head variable is already carried in the batch, so
    this leaf just packs one head key per surviving row.
    """

    __slots__ = ("base_key", "carry_weights")

    def __init__(self, head_ops, table):
        head_arity = len(head_ops)
        weights = [1 << (KEY_BITS * (head_arity - 1 - j)) for j in range(head_arity)]
        base = head_arity << (KEY_BITS * head_arity)
        carried: Dict[int, int] = {}
        for j, (is_slot, payload) in enumerate(head_ops):
            if is_slot:
                carried[payload] = carried.get(payload, 0) + weights[j]
            else:
                base += table.intern(payload) * weights[j]
        self.base_key = base
        self.carry_weights = tuple(carried.items())


class _BatchSequence:
    """One lowered execution order: non-leaf steps, the fused leaf, or a ground key."""

    __slots__ = ("steps", "leaf", "ground_key")

    def __init__(self, steps, leaf, ground_key=None):
        self.steps = steps
        self.leaf = leaf
        self.ground_key = ground_key


def lower_sequence(kernel, steps, table) -> _BatchSequence:
    """Lower one of a kernel's step sequences against an intern table."""
    if not steps:
        # Empty body (fires exactly once): validation guarantees a ground head.
        key = len(kernel.head_ops)
        for _, payload in kernel.head_ops:
            key = (key << KEY_BITS) | table.intern(payload)
        return _BatchSequence((), None, ground_key=key)
    bound: Set[int] = set()
    lowered: List[object] = []
    if steps[-1].anti:
        # The order ends on an anti filter: no positive join to fuse head
        # emission into, so lower every step and emit from the carries.
        for step in steps:
            if step.anti:
                lowered.append(_BatchAntiStep(step, table))
            else:
                lowered.append(_BatchStep(step, table, bound))
                bound.update(slot for _, slot in step.binds)
        return _BatchSequence(tuple(lowered), _EmitLeaf(kernel.head_ops, table))
    single = len(steps) == 1
    for step in steps[:-1]:
        if step.anti:
            lowered.append(_BatchAntiStep(step, table))
        else:
            lowered.append(_BatchStep(step, table, bound))
            bound.update(slot for _, slot in step.binds)
    leaf = _BatchLeaf(steps[-1], table, kernel.head_ops, single_step=single)
    return _BatchSequence(tuple(lowered), leaf)


class BatchKernel:
    """The columnar lowering of one :class:`~repro.datalog.engine.executor.RuleKernel`.

    Lowered sequences bake intern codes in, so they are cached per intern
    table (the cache holds a strong reference to each table, keeping the
    ``id()`` key valid); the static order and every delta variant share
    the tuple kernel's slot numbering.
    """

    __slots__ = ("kernel", "head_arity", "_lowered")

    _MAX_TABLES = 8

    def __init__(self, kernel):
        self.kernel = kernel
        self.head_arity = len(kernel.head_ops)
        self._lowered: Dict[int, Tuple] = {}

    def sequences(self, table):
        """(static sequence, {body position: delta sequence}) for *table*."""
        entry = self._lowered.get(id(table))
        if entry is None or entry[0] is not table:
            if len(self._lowered) >= self._MAX_TABLES:
                self._lowered.clear()
            static = lower_sequence(self.kernel, self.kernel.static_steps, table)
            deltas = {
                position: lower_sequence(self.kernel, steps, table)
                for position, steps in self.kernel.delta_steps.items()
            }
            entry = (table, static, deltas)
            self._lowered[id(table)] = entry
        return entry[1], entry[2]


# ----------------------------------------------------------------------
# The working set
# ----------------------------------------------------------------------
class _BatchWorking:
    """The fixpoint's columnar working set: base parts + locally derived rows.

    The input database's columnar mirror provides the (read-only) base
    parts; everything derived during evaluation lands in local
    :class:`ColumnarRelation` groups, so the input is never mutated and
    nothing is decoded back to tuples until the final IDB extraction.
    """

    __slots__ = ("database", "table", "local", "_parts")

    def __init__(self, database):
        self.database = database
        self.table = database.columnar_store().table
        self.local: Dict[str, Dict[int, ColumnarRelation]] = {}
        self._parts: Dict[Tuple[str, int], Tuple[ColumnarRelation, ...]] = {}

    def parts(self, predicate: str, arity: int) -> Tuple[ColumnarRelation, ...]:
        """All parts of *predicate* at *arity*, base chain first, local last.

        Stable within a round (parts grow in place; the cache entry is only
        invalidated when a predicate's first local group appears), which is
        what makes dedup against the live key sets sound — exactly the
        tuple engines' relation_view contract.
        """
        cached = self._parts.get((predicate, arity))
        if cached is None:
            groups = [
                group
                for group in self.database.columnar_parts(predicate)
                if group.arity == arity
            ]
            local = self.local.get(predicate)
            if local is not None:
                group = local.get(arity)
                if group is not None:
                    groups.append(group)
            cached = self._parts[(predicate, arity)] = tuple(groups)
        return cached

    def key_sets(self, predicate: str, arity: int) -> List[set]:
        return [group.keys for group in self.parts(predicate, arity)]

    def local_group(self, predicate: str, arity: int) -> ColumnarRelation:
        local = self.local.setdefault(predicate, {})
        group = local.get(arity)
        if group is None:
            group = local[arity] = ColumnarRelation(arity)
            self._parts.pop((predicate, arity), None)
        return group

    def add_fact_row(self, predicate: str, values: Tuple) -> bool:
        """Intern and add one ground fact (the fact-rule loading path)."""
        codes = [self.table.intern(value) for value in values]
        key = pack_codes(codes)
        for keys in self.key_sets(predicate, len(values)):
            if key in keys:
                return False
        self.local_group(predicate, len(values)).extend_columns(
            tuple([code] for code in codes), (key,)
        )
        return True


# ----------------------------------------------------------------------
# Step execution
# ----------------------------------------------------------------------
def _static_row_filter(columns, const_checks, self_checks):
    """A per-row predicate for the batch-independent checks (or ``None``)."""
    if not const_checks and not self_checks:
        return None

    def ok(row: int) -> bool:
        for position, code in const_checks:
            if columns[position][row] != code:
                return False
        for position, other in self_checks:
            if columns[position][row] != columns[other][row]:
                return False
        return True

    return ok


def _step_parts(step, working: _BatchWorking, delta):
    if not step.use_delta:
        return working.parts(step.predicate, step.arity)
    groups = delta.get(step.predicate) if delta else None
    if not groups:
        return ()
    group = groups.get(step.arity)
    return (group,) if group is not None else ()


def _run_step(step: _BatchStep, parts, cols, n: int):
    """Join the batch against one atom; returns the next (cols, n)."""
    out: Dict[int, list] = {slot: [] for slot in step.carry_slots}
    for _, slot in step.binds:
        out[slot] = []
    total = 0
    probe_kind = step.probe_kind
    for part in parts:
        columns = part.columns
        row_ok = _static_row_filter(columns, step.const_checks, step.self_checks)
        if probe_kind == PROBE_SLOT:
            index_get = part.index(step.probe_position).get
            probe_col = cols[step.probe_slot]
            carries = [(out[slot], cols[slot]) for slot in step.carry_slots]
            bind_cols = [(out[slot], columns[pos]) for pos, slot in step.binds]
            check_cols = [(columns[pos], cols[slot]) for pos, slot in step.slot_checks]
            for i in range(n):
                rows = index_get(probe_col[i])
                if rows is None:
                    continue
                if row_ok is not None:
                    rows = [r for r in rows if row_ok(r)]
                if check_cols:
                    for column, batch_col in check_cols:
                        expected = batch_col[i]
                        rows = [r for r in rows if column[r] == expected]
                        if not rows:
                            break
                if not rows:
                    continue
                k = len(rows)
                total += k
                for dst, src in carries:
                    if k == 1:
                        dst.append(src[i])
                    else:
                        dst.extend([src[i]] * k)
                for dst, column in bind_cols:
                    dst.extend([column[r] for r in rows])
        else:
            if probe_kind == PROBE_CONST:
                rows = part.index(step.probe_position).get(step.probe_code)
                if not rows:
                    continue
            else:
                rows = range(len(part))
            if row_ok is not None:
                rows = [r for r in rows if row_ok(r)]
                if not rows:
                    continue
            if step.slot_checks:
                # Candidates are batch-independent but the checks are not:
                # fall back to a per-batch-row filter pass.
                carries = [(out[slot], cols[slot]) for slot in step.carry_slots]
                bind_cols = [(out[slot], columns[pos]) for pos, slot in step.binds]
                check_cols = [(columns[pos], cols[slot]) for pos, slot in step.slot_checks]
                for i in range(n):
                    survivors = rows
                    for column, batch_col in check_cols:
                        expected = batch_col[i]
                        survivors = [r for r in survivors if column[r] == expected]
                        if not survivors:
                            break
                    if not survivors:
                        continue
                    k = len(survivors)
                    total += k
                    for dst, src in carries:
                        if k == 1:
                            dst.append(src[i])
                        else:
                            dst.extend([src[i]] * k)
                    for dst, column in bind_cols:
                        dst.extend([column[r] for r in survivors])
            else:
                # Pure cross product: batch rows × candidate rows.
                k = len(rows)
                total += n * k
                for slot in step.carry_slots:
                    src = cols[slot]
                    out[slot].extend([value for value in src for _ in range(k)])
                for pos, slot in step.binds:
                    column = columns[pos]
                    values = [column[r] for r in rows]
                    out[slot].extend(values * n)
    return out, total


def _leaf_keys_for_rows(leaf: _BatchLeaf, columns, rows):
    """The leaf-part key contribution of each matched row."""
    weights = leaf.leaf_weights
    if not weights:
        return [0] * len(rows)
    if len(weights) == 1:
        position, weight = weights[0]
        column = columns[position]
        if weight == 1:
            return [column[r] for r in rows]
        return [column[r] * weight for r in rows]
    keys = [0] * len(rows)
    for position, weight in weights:
        column = columns[position]
        keys = [key + column[r] * weight for key, r in zip(keys, rows)]
    return keys


def _run_leaf(leaf: _BatchLeaf, parts, cols, n: int, bucket: set, existing_sets):
    """Fused leaf join + head emission + dedup; returns (firings, new)."""
    total = 0
    if leaf.identity:
        emitted: set = set()
        for part in parts:
            total += len(part.keys)
            emitted |= part.keys
        fresh = emitted
    else:
        carry_weights = leaf.carry_weights
        base = leaf.base_key
        if not carry_weights:
            carry_keys = None
        elif len(carry_weights) == 1:
            slot, weight = carry_weights[0]
            source = cols[slot]
            if weight == 1:
                carry_keys = [base + value for value in source]
            else:
                carry_keys = [base + value * weight for value in source]
        else:
            carry_keys = [base] * n
            for slot, weight in carry_weights:
                source = cols[slot]
                carry_keys = [
                    key + value * weight for key, value in zip(carry_keys, source)
                ]

        out_keys: List[int] = []
        probe_kind = leaf.probe_kind
        for part in parts:
            columns = part.columns
            row_ok = _static_row_filter(columns, leaf.const_checks, leaf.self_checks)
            if probe_kind == PROBE_SLOT and not leaf.slot_checks:
                # The hot join shape: probe the index per batch row and emit
                # ready-packed keys in one comprehension per hit.  The inner
                # loops are specialised for the dominant head shapes — a
                # function call or a generic weight walk per probe hit is
                # exactly the per-firing overhead this module exists to kill.
                index_get = part.index(leaf.probe_position).get
                probe_col = cols[leaf.probe_slot]
                extend = out_keys.extend
                leaf_weights = leaf.leaf_weights
                if row_ok is None and len(leaf_weights) == 1:
                    position, weight = leaf_weights[0]
                    column = columns[position]
                    if carry_keys is None:
                        if weight == 1:
                            for i in range(n):
                                rows = index_get(probe_col[i])
                                if rows is not None:
                                    total += len(rows)
                                    extend([base + column[r] for r in rows])
                        else:
                            for i in range(n):
                                rows = index_get(probe_col[i])
                                if rows is not None:
                                    total += len(rows)
                                    extend([base + column[r] * weight for r in rows])
                    elif weight == 1:
                        for i in range(n):
                            rows = index_get(probe_col[i])
                            if rows is not None:
                                total += len(rows)
                                carry = carry_keys[i]
                                extend([carry + column[r] for r in rows])
                    else:
                        for i in range(n):
                            rows = index_get(probe_col[i])
                            if rows is not None:
                                total += len(rows)
                                carry = carry_keys[i]
                                extend([carry + column[r] * weight for r in rows])
                elif row_ok is None and len(leaf_weights) == 2:
                    (pos_a, weight_a), (pos_b, weight_b) = leaf_weights
                    column_a = columns[pos_a]
                    column_b = columns[pos_b]
                    for i in range(n):
                        rows = index_get(probe_col[i])
                        if rows is not None:
                            total += len(rows)
                            carry = base if carry_keys is None else carry_keys[i]
                            extend(
                                [
                                    carry
                                    + column_a[r] * weight_a
                                    + column_b[r] * weight_b
                                    for r in rows
                                ]
                            )
                elif row_ok is None and not leaf_weights:
                    # Existence-style leaf: every hit re-emits the carry key
                    # (each match is still a distinct firing).
                    for i in range(n):
                        rows = index_get(probe_col[i])
                        if rows is not None:
                            k = len(rows)
                            total += k
                            carry = base if carry_keys is None else carry_keys[i]
                            if k == 1:
                                out_keys.append(carry)
                            else:
                                extend([carry] * k)
                else:
                    for i in range(n):
                        rows = index_get(probe_col[i])
                        if rows is None:
                            continue
                        if row_ok is not None:
                            rows = [r for r in rows if row_ok(r)]
                            if not rows:
                                continue
                        leaf_keys = _leaf_keys_for_rows(leaf, columns, rows)
                        total += len(leaf_keys)
                        carry = base if carry_keys is None else carry_keys[i]
                        extend([carry + key for key in leaf_keys])
            elif probe_kind != PROBE_SLOT and not leaf.slot_checks:
                # Batch-independent candidates: one cross with the carries.
                if probe_kind == PROBE_CONST:
                    rows = part.index(leaf.probe_position).get(leaf.probe_code)
                    if not rows:
                        continue
                else:
                    rows = range(len(part))
                if row_ok is not None:
                    rows = [r for r in rows if row_ok(r)]
                    if not rows:
                        continue
                leaf_keys = _leaf_keys_for_rows(leaf, columns, rows)
                if carry_keys is None:
                    total += n * len(leaf_keys)
                    out_keys.extend([base + key for key in leaf_keys])
                else:
                    total += len(carry_keys) * len(leaf_keys)
                    out_keys.extend(
                        [carry + key for carry in carry_keys for key in leaf_keys]
                    )
            else:
                # Slot checks at the leaf: per-batch-row filtering.
                if probe_kind == PROBE_SLOT:
                    index_get = part.index(leaf.probe_position).get
                    probe_col = cols[leaf.probe_slot]
                    candidates = None
                else:
                    if probe_kind == PROBE_CONST:
                        candidates = part.index(leaf.probe_position).get(leaf.probe_code)
                        if not candidates:
                            continue
                    else:
                        candidates = range(len(part))
                    if row_ok is not None:
                        candidates = [r for r in candidates if row_ok(r)]
                        if not candidates:
                            continue
                check_cols = [(columns[pos], cols[slot]) for pos, slot in leaf.slot_checks]
                for i in range(n):
                    if candidates is None:
                        rows = index_get(probe_col[i])
                        if rows is None:
                            continue
                        if row_ok is not None:
                            rows = [r for r in rows if row_ok(r)]
                    else:
                        rows = candidates
                    for column, batch_col in check_cols:
                        expected = batch_col[i]
                        rows = [r for r in rows if column[r] == expected]
                        if not rows:
                            break
                    if not rows:
                        continue
                    leaf_keys = _leaf_keys_for_rows(leaf, columns, rows)
                    total += len(leaf_keys)
                    carry = base if carry_keys is None else carry_keys[i]
                    out_keys.extend([carry + key for key in leaf_keys])
        fresh = set(out_keys)

    # `difference` (unlike `-=`, which always walks its argument) picks the
    # cheaper side to iterate — on deep recursions the fresh set is tiny and
    # the accumulated key sets are the whole model, so this is the difference
    # between O(round) and O(model) dedup per round.
    if bucket:
        fresh = fresh.difference(bucket)
    for keys in existing_sets:
        if keys and fresh:
            fresh = fresh.difference(keys)
    new = len(fresh)
    if new:
        bucket |= fresh
    return total, new


def _run_anti_step(step: _BatchAntiStep, working, cols, n: int):
    """Filter the batch by absence from the negated relation; next (cols, n)."""
    # Anti always reads the working set, never the delta: the negated
    # predicate is closed below this stratum, so it has no delta.
    key_sets = working.key_sets(step.predicate, step.arity)
    base = step.base_key
    slot_weights = step.slot_weights
    keep: List[int] = []
    if len(slot_weights) == 1:
        (slot, weight), = slot_weights
        column = cols[slot]
        for i in range(n):
            key = base + column[i] * weight
            for keys in key_sets:
                if key in keys:
                    break
            else:
                keep.append(i)
    else:
        for i in range(n):
            key = base
            for slot, weight in slot_weights:
                key += cols[slot][i] * weight
            for keys in key_sets:
                if key in keys:
                    break
            else:
                keep.append(i)
    if len(keep) == n:
        return cols, n
    if not keep:
        return cols, 0
    filtered = {slot: [column[i] for i in keep] for slot, column in cols.items()}
    return filtered, len(keep)


def _run_emit_leaf(leaf: _EmitLeaf, cols, n: int, bucket: set, existing_sets):
    """Emit one head key per surviving row (orders ending on an anti step)."""
    base = leaf.base_key
    carry_weights = leaf.carry_weights
    if not carry_weights:
        fresh = {base} if n else set()
    elif len(carry_weights) == 1:
        slot, weight = carry_weights[0]
        source = cols[slot]
        if weight == 1:
            fresh = {base + value for value in source}
        else:
            fresh = {base + value * weight for value in source}
    else:
        keys = [base] * n
        for slot, weight in carry_weights:
            source = cols[slot]
            keys = [key + value * weight for key, value in zip(keys, source)]
        fresh = set(keys)
    if bucket:
        fresh = fresh.difference(bucket)
    for keys in existing_sets:
        if keys and fresh:
            fresh = fresh.difference(keys)
    new = len(fresh)
    if new:
        bucket |= fresh
    return n, new


def _run_sequence(sequence: _BatchSequence, working, delta, bucket, existing_sets):
    """Run one lowered order to completion; returns (firings, new)."""
    if sequence.leaf is None:
        # Empty body: exactly one firing of the ground head key.
        key = sequence.ground_key
        if key not in bucket and not any(key in keys for keys in existing_sets):
            bucket.add(key)
            return 1, 1
        return 1, 0
    cols: Dict[int, list] = {}
    n = 1
    for step in sequence.steps:
        if type(step) is _BatchAntiStep:
            cols, n = _run_anti_step(step, working, cols, n)
        else:
            cols, n = _run_step(step, _step_parts(step, working, delta), cols, n)
        if not n:
            return 0, 0
    leaf = sequence.leaf
    if type(leaf) is _EmitLeaf:
        return _run_emit_leaf(leaf, cols, n, bucket, existing_sets)
    return _run_leaf(leaf, _step_parts(leaf, working, delta), cols, n, bucket, existing_sets)


# ----------------------------------------------------------------------
# Rule firing (the batch counterparts of base.fire_rule / fire_rule_delta)
# ----------------------------------------------------------------------
def _fire_static(batch: BatchKernel, working, bucket, statistics) -> None:
    predicate = batch.kernel.rule.head.predicate
    static, _ = batch.sequences(working.table)
    existing = working.key_sets(predicate, batch.head_arity)
    firings, new = _run_sequence(static, working, None, bucket, existing)
    statistics.record_batch(predicate, firings, new)


def _fire_delta(
    batch: BatchKernel, rule, working, delta, delta_predicates, bucket, statistics
) -> None:
    predicate = rule.head.predicate
    _, variants = batch.sequences(working.table)
    existing = working.key_sets(predicate, batch.head_arity)
    for position in batch.kernel.delta_positions:
        if rule.body[position].predicate not in delta_predicates:
            continue
        firings, new = _run_sequence(
            variants[position], working, delta, bucket, existing
        )
        statistics.record_batch(predicate, firings, new)


def _commit(working: _BatchWorking, buckets, head_arities, build_delta: bool):
    """Unpack each bucket's fresh keys into columns and append them.

    Returns ``(delta groups, total added)``; the delta groups feed the
    next semi-naive round (``build_delta=False`` for the naive engine,
    which re-scans the full model instead).
    """
    delta: Dict[str, Dict[int, ColumnarRelation]] = {}
    added = 0
    for predicate, bucket in buckets.items():
        if not bucket:
            continue
        keys_list = list(bucket)
        arities = head_arities.get(predicate)
        per_arity: Dict[int, List[int]] = {}
        if arities is not None and len(arities) == 1:
            (arity,) = arities
            per_arity[arity] = keys_list
        else:
            for key in keys_list:
                arity = (key.bit_length() - 1) // KEY_BITS if key else 0
                per_arity.setdefault(arity, []).append(key)
        groups: Dict[int, ColumnarRelation] = {}
        for arity, keys in per_arity.items():
            columns = [
                [(key >> shift) & _KEY_MASK for key in keys]
                for shift in (KEY_BITS * (arity - 1 - j) for j in range(arity))
            ]
            working.local_group(predicate, arity).extend_columns(columns, keys)
            if build_delta:
                group = ColumnarRelation(arity)
                group.extend_columns(columns, keys)
                groups[arity] = group
        if build_delta and groups:
            delta[predicate] = groups
        added += len(keys_list)
    return delta, added


def _decode_idb(working: _BatchWorking, database, idb_predicates) -> Database:
    """The derived IDB relations decoded back to plain value tuples.

    Mirrors the tuple engines' ``working.restrict(idb_predicates)``: the
    input database's relations under IDB names ride along, and only
    non-empty relations appear.
    """
    values = working.table.values()
    relations: Dict[str, Set[Tuple]] = {}
    for predicate in idb_predicates:
        tuples = set(database.relation(predicate))
        local = working.local.get(predicate)
        if local:
            for group in local.values():
                if group.arity == 0:
                    if group.keys:
                        tuples.add(())
                else:
                    tuples.update(
                        zip(*[map(values.__getitem__, column) for column in group.columns])
                    )
        if tuples:
            relations[predicate] = tuples
    return Database.adopt(relations)


# ----------------------------------------------------------------------
# Fixpoint drivers (mirror engine/seminaive.py and engine/naive.py)
# ----------------------------------------------------------------------
def _load_facts_seminaive(program, working, statistics):
    fact_rules, _ = split_rules(program)
    for rule in fact_rules:
        statistics.record_firing()
        is_new = working.add_fact_row(rule.head.predicate, rule.head.as_fact_tuple())
        statistics.record_fact(rule.head.predicate, is_new)


def _stratum_kernels(plan, stratum):
    return [(rule, plan.kernel(rule).batch_kernel()) for rule in stratum.rules]


def _head_arities(plan) -> Dict[str, Set[int]]:
    arities: Dict[str, Set[int]] = {}
    for stratum in plan.strata:
        for rule in stratum.rules:
            arities.setdefault(rule.head.predicate, set()).add(len(rule.head.terms))
    return arities


def evaluate_seminaive(
    program, database, plan, statistics, max_iterations: Optional[int], guard=None,
    workers: int = 1,
) -> EvaluationResult:
    """The semi-naive fixpoint over columnar state (statistics-identical).

    Dispatches to the NumPy vector lane when the program's head relations
    fit 64-bit packed keys (see :mod:`repro.datalog.columnar.vector`);
    otherwise runs the packed-bigint lane below, which handles any arity.
    With ``workers > 1``, programs off the vector lane route through the
    process-sharded driver (:mod:`repro.datalog.columnar.shard`), which
    partitions each recursive round's delta across forked workers —
    vector-eligible programs stay on the (already C-speed) vector lane,
    serial, where cross-process sharding cannot pay for itself.
    An armed *guard* is checkpointed at every round boundary and between
    kernel batches, so even a single enormous round stays cancellable; the
    working state is lane-private, so aborts leave *database* untouched.
    """
    from repro.datalog.columnar import shard, vector

    if workers > 1 and shard.applicable(plan, database, program, workers):
        return shard.evaluate_seminaive_sharded(
            program, database, plan, statistics, max_iterations,
            guard=guard, workers=workers,
        )
    if vector.supported(plan, database.columnar_store().table, program):
        return vector.evaluate_seminaive(
            program, database, plan, statistics, max_iterations, guard=guard
        )
    idb_predicates = program.idb_predicates()
    working = _BatchWorking(database)
    _load_facts_seminaive(program, working, statistics)

    def check_budget() -> None:
        if guard is not None:
            guard.checkpoint(statistics)
        if max_iterations is not None and statistics.iterations > max_iterations:
            raise EvaluationError(
                f"semi-naive evaluation exceeded {max_iterations} iterations"
            )

    head_arities = _head_arities(plan)
    for stratum in plan.strata:
        statistics.record_stratum()
        label = stratum.label
        kernels = _stratum_kernels(plan, stratum)

        statistics.record_iteration(label)
        check_budget()
        buckets: Dict[str, set] = {}
        for rule, batch in kernels:
            if guard is not None:
                guard.checkpoint(statistics)
            bucket = buckets.setdefault(rule.head.predicate, set())
            _fire_static(batch, working, bucket, statistics)
        delta, added = _commit(working, buckets, head_arities, build_delta=True)

        if not stratum.recursive:
            continue

        while added:
            statistics.record_iteration(label)
            check_budget()
            buckets = {}
            delta_predicates = set(delta)
            for rule, batch in kernels:
                if guard is not None:
                    guard.checkpoint(statistics)
                bucket = buckets.setdefault(rule.head.predicate, set())
                _fire_delta(
                    batch, rule, working, delta, delta_predicates, bucket, statistics
                )
            delta, added = _commit(working, buckets, head_arities, build_delta=True)

    idb_facts = _decode_idb(working, database, idb_predicates)
    return EvaluationResult(program, database, idb_facts, statistics)


def evaluate_naive(
    program, database, plan, statistics, max_iterations: Optional[int], guard=None,
    workers: int = 1,
) -> EvaluationResult:
    """The naive fixpoint over columnar state (statistics-identical).

    Same lane dispatch — and same guard checkpoints — as
    :func:`evaluate_seminaive`.  ``workers`` is accepted for interface
    symmetry but the naive lane always runs serial: without deltas there
    is no small per-round unit of work to shard.
    """
    from repro.datalog.columnar import vector

    if vector.supported(plan, database.columnar_store().table, program):
        return vector.evaluate_naive(
            program, database, plan, statistics, max_iterations, guard=guard
        )
    working = _BatchWorking(database)
    fact_rules, _ = split_rules(program)
    for rule in fact_rules:
        is_new = working.add_fact_row(rule.head.predicate, rule.head.as_fact_tuple())
        statistics.record_firing()
        statistics.record_fact(rule.head.predicate, is_new)

    head_arities = _head_arities(plan)
    for stratum in plan.strata:
        statistics.record_stratum()
        kernels = _stratum_kernels(plan, stratum)
        changed = True
        while changed:
            statistics.record_iteration(stratum.label)
            if guard is not None:
                guard.checkpoint(statistics)
            if max_iterations is not None and statistics.iterations > max_iterations:
                raise EvaluationError(
                    f"naive evaluation exceeded {max_iterations} iterations"
                )
            buckets: Dict[str, set] = {}
            for rule, batch in kernels:
                if guard is not None:
                    guard.checkpoint(statistics)
                bucket = buckets.setdefault(rule.head.predicate, set())
                _fire_static(batch, working, bucket, statistics)
            _, added = _commit(working, buckets, head_arities, build_delta=False)
            changed = added > 0
            if not stratum.recursive:
                break

    idb_facts = _decode_idb(working, database, program.idb_predicates())
    return EvaluationResult(program, database, idb_facts, statistics)
