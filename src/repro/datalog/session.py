"""Query sessions: one object tying a program, a database, transforms, and engines.

The paper's experiments all have the same shape — take a selection query,
optionally rewrite the program (magic sets, monadic rewrite, constant
propagation), then evaluate it under some strategy and compare the work
done.  :class:`QuerySession` packages that shape::

    from repro.datalog import QuerySession
    from repro.datalog.transforms import MagicSets

    session = QuerySession(program, database)
    plain = session.evaluate(engine="seminaive")
    magic = session.with_transforms(MagicSets()).evaluate(engine="seminaive")
    assert plain.answers() == magic.answers()

Sessions are immutable builders: :meth:`with_transforms` /
:meth:`with_database` return new sessions, and the transformed program and
evaluation results are cached per session, so repeated ``evaluate`` calls
(e.g. inside a benchmark loop) re-run only the engine, not the rewrites.
Result caches are tied to the database's mutation counter
(:attr:`Database.version`): mutating the database invalidates them
automatically, so a session never serves answers for data that no longer
exists.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from repro.datalog.database import Database
from repro.datalog.engine.base import EvaluationResult
from repro.datalog.engine.planner import Planner, ProgramPlan
from repro.datalog.engine.registry import (
    EngineNotApplicableError,
    available_engines,
    get_engine,
)
from repro.datalog.guard import build_guard
from repro.datalog.prepared import PreparedQuery
from repro.datalog.program import Program
from repro.datalog.transforms.pipeline import Pipeline, PipelineOutcome, Transform


def _as_program(program) -> Program:
    """Accept a :class:`Program` or any wrapper exposing ``.program`` (e.g. ChainProgram)."""
    if isinstance(program, Program):
        return program
    inner = getattr(program, "program", None)
    if isinstance(inner, Program):
        return inner
    raise TypeError(f"expected a Program (or a wrapper with .program), got {type(program).__name__}")


class QuerySession:
    """A fluent facade over transforms + engine registry for one query."""

    DEFAULT_ENGINE = "seminaive"

    def __init__(
        self,
        program,
        database: Database,
        transforms: Iterable[Transform] = (),
        planner: Optional[Planner] = None,
    ):
        self._program = _as_program(program)
        self._database = database
        self._pipeline = transforms if isinstance(transforms, Pipeline) else Pipeline(transforms)
        self._outcome: Optional[PipelineOutcome] = None
        # Shared join-plan cache: engines that support planning compile each
        # (program, database) plan once and reuse it across repeated queries.
        self._planner = planner if planner is not None else Planner()
        # (engine name, max_iterations, workers) -> (engine object, result);
        # the engine object is kept both to pin it alive and to detect
        # replacement.
        self._results: Dict[
            Tuple[str, Optional[int], Optional[int]], Tuple[object, EvaluationResult]
        ] = {}
        self._results_version = database.version
        # engine name -> PreparedQuery compiled for this session's pipeline
        self._prepared: Dict[str, PreparedQuery] = {}

    # ------------------------------------------------------------------
    # Builder steps
    # ------------------------------------------------------------------
    def with_transforms(self, *transforms: Transform) -> "QuerySession":
        """A new session whose pipeline has *transforms* appended.

        The derived session shares this one's :class:`Planner`, so join
        plans compiled for a common (program, database) pair are reused.
        """
        return QuerySession(
            self._program, self._database, self._pipeline.then(*transforms), planner=self._planner
        )

    def with_database(self, database: Database) -> "QuerySession":
        """A new session over a different database (same program and pipeline).

        The already-computed pipeline outcome carries over — transforms
        depend only on the (immutable) program, so re-running them for a
        database sweep would be pure waste.  The planner carries over too;
        its cache keys on the database, so plans never leak across data.
        """
        session = QuerySession(self._program, database, self._pipeline, planner=self._planner)
        session._outcome = self._outcome
        return session

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def program(self) -> Program:
        """The original (untransformed) program."""
        return self._program

    @property
    def database(self) -> Database:
        return self._database

    @property
    def pipeline(self) -> Pipeline:
        return self._pipeline

    @property
    def provenance(self) -> PipelineOutcome:
        """Per-stage provenance of the transform pipeline (computed once)."""
        if self._outcome is None:
            self._outcome = self._pipeline.apply(self._program)
        return self._outcome

    @property
    def transformed_program(self) -> Program:
        """The program after all transforms (the one engines actually run)."""
        return self.provenance.program

    @property
    def planner(self) -> Planner:
        """The session's shared join-plan cache."""
        return self._planner

    def query_plan(self) -> ProgramPlan:
        """The stratification + join plan the bottom-up engines will execute.

        Compiled (or served from the session's planner cache) for the
        *transformed* program over the current database — exactly what
        ``evaluate()`` hands the engines.
        """
        return self._planner.plan(self.transformed_program, self._database)

    def explain(self, *, plans: bool = False) -> str:
        """Human-readable account of what the pipeline did to the program.

        With ``plans=True`` the EXPLAIN output of :meth:`query_plan` is
        appended: the SCC strata and, per rule, the chosen join order with
        the predicted access path (probe vs scan) of every body atom.
        """
        header = f"program: {len(self._program.rules)} rules, goal {self._program.goal}"
        text = header + "\n" + self.provenance.describe()
        if plans:
            text += "\n" + self.query_plan().describe()
        return text

    # ------------------------------------------------------------------
    # Prepared queries
    # ------------------------------------------------------------------
    def prepare(self, engine: str = DEFAULT_ENGINE) -> PreparedQuery:
        """Compile this session's query once; execute it per binding afterwards.

        The session's program may contain :class:`~repro.datalog.terms.Parameter`
        terms (``?anc($who, Y)``): the pipeline, the deferred-seed
        compilation, and the join plan all run now, and the returned
        :class:`~repro.datalog.prepared.PreparedQuery` is then bound and
        executed with concrete constants — thousands of times, concurrently
        — without repeating any of that work.

        Rewrite engines (``magic``) are folded into the pipeline: the
        rewrite becomes a compiled stage and execution runs the delegate
        engine (``seminaive``).  Prepared queries are cached per engine
        name on the session.
        """
        prepared = self._prepared.get(engine)
        if prepared is None:
            prepared = PreparedQuery(
                self._program, self._database, self._pipeline, default_engine=engine
            )
            self._prepared[engine] = prepared
        return prepared

    def materialize(self, *, compiled: bool = True, timeout=None, budget=None, cancellation=None):
        """Evaluate once into a live :class:`~repro.datalog.incremental.MaterializedView`.

        The view owns its own copy of the model plus per-fact support counts
        and stays current under ``view.apply(insertions, deletions)`` — the
        incremental alternative to re-running :meth:`evaluate` after every
        write.  The session's transformed program is materialized, so
        pipeline rewrites (magic sets etc.) are maintained incrementally
        too.  Parameterized templates must be prepared and bound first
        (:meth:`PreparedQuery.materialize <repro.datalog.prepared.PreparedQuery.materialize>`).

        *timeout* / *budget* / *cancellation* guard the initial build only
        (an abort discards the half-built view, this session's database
        untouched); once constructed, maintenance runs unguarded — see
        :class:`~repro.datalog.incremental.MaterializedView`.
        """
        from repro.datalog.incremental import MaterializedView

        return MaterializedView(
            self.transformed_program,
            self._database,
            compiled=compiled,
            guard=build_guard(timeout, budget, cancellation),
        )

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        engine: str = DEFAULT_ENGINE,
        *,
        max_iterations: Optional[int] = None,
        fresh: bool = False,
        timeout=None,
        budget=None,
        cancellation=None,
        workers: Optional[int] = None,
    ) -> EvaluationResult:
        """Run the transformed program under the named engine.

        Results are cached per ``(engine, max_iterations, workers)`` and
        invalidated automatically when the database mutates (its
        :attr:`~Database.version` changes).  Pass ``fresh=True`` to force a
        re-run regardless (benchmarks timing the engine itself should, so
        the cache does not hide the work).

        *timeout* (wall-clock seconds), *budget* (a
        :class:`~repro.datalog.guard.ResourceBudget`), and *cancellation* (a
        :class:`~repro.datalog.guard.CancellationToken`) arm a cooperative
        :class:`~repro.datalog.guard.ExecutionGuard` for this run; an abort
        raises the typed :class:`~repro.errors.QueryAborted` subclass and
        caches nothing.  A guarded run that completes is a complete result
        and caches normally.

        *workers*, when > 1, enables the parallel evaluation layer on
        engines that support it (``supports_workers``); results and
        statistics are identical to serial at any worker count, but runs
        are cached separately so benchmarks can time both.
        """
        if self._database.version != self._results_version:
            self._results.clear()
            self._results_version = self._database.version
        resolved = get_engine(engine)
        key = (engine, max_iterations, workers)
        cached = self._results.get(key)
        # Identity-compare against the engine that produced the cached result,
        # so register_engine(..., replace=True) never serves stale results
        # (holding the object also keeps its id from being recycled).
        if fresh or cached is None or cached[0] is not resolved:
            kwargs = {}
            if getattr(resolved, "supports_planner", False):
                kwargs["planner"] = self._planner
            guard = build_guard(timeout, budget, cancellation)
            if guard is not None:
                kwargs["guard"] = guard
            if workers is not None:
                # Forwarded unconditionally: an engine without the parallel
                # layer must raise, not silently run serial.
                kwargs["workers"] = workers
            result = resolved.evaluate(
                self.transformed_program,
                self._database,
                max_iterations=max_iterations,
                **kwargs,
            )
            self._results[key] = (resolved, result)
        return self._results[key][1]

    def answers(
        self,
        engine: str = DEFAULT_ENGINE,
        *,
        max_iterations: Optional[int] = None,
        fresh: bool = False,
        timeout=None,
        budget=None,
        cancellation=None,
        workers: Optional[int] = None,
    ) -> FrozenSet[Tuple]:
        """The goal answers under the named engine.

        Like :meth:`evaluate`, answers are cached but never stale: database
        mutations invalidate the cache automatically.  ``fresh=True`` still
        forces a re-run (e.g. for timing).
        """
        return self.evaluate(
            engine,
            max_iterations=max_iterations,
            fresh=fresh,
            timeout=timeout,
            budget=budget,
            cancellation=cancellation,
            workers=workers,
        ).answers()

    def refresh(self) -> "QuerySession":
        """Drop all cached evaluation results unconditionally.

        The transformed program and pipeline provenance are kept — transforms
        depend only on the program, which is immutable.  Returns ``self`` for
        chaining.
        """
        self._results.clear()
        return self

    def compare(
        self,
        engines: Optional[Iterable[str]] = None,
        *,
        max_iterations: Optional[int] = None,
    ) -> Dict[str, EvaluationResult]:
        """Evaluate under several engines (default: all registered) and collect results.

        When running the default portfolio, engines whose rewrite rejects the
        program up front (raising :class:`EngineNotApplicableError`, e.g.
        ``magic`` on a goal without constants) are skipped silently.  Anything
        else — an invalid program, a transform bug producing an invalid
        rewritten program, an exceeded ``max_iterations`` — always propagates,
        so a partial result dict never masks an engine that started and
        failed.
        """
        explicit = engines is not None
        names = tuple(engines) if explicit else available_engines()
        # Run the session's own pipeline and validate the program first: a
        # transform failure or an invalid program is a failure of the whole
        # comparison, never a per-engine skip.
        self.transformed_program.validate()
        results: Dict[str, EvaluationResult] = {}
        for name in names:
            try:
                results[name] = self.evaluate(name, max_iterations=max_iterations)
            except EngineNotApplicableError:
                if explicit:
                    raise
        return results

    def __repr__(self) -> str:
        return (
            f"QuerySession(goal={self._program.goal}, rules={len(self._program.rules)}, "
            f"pipeline={self._pipeline!r}, database={self._database!r})"
        )
