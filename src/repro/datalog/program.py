"""Datalog programs: finite sets of rules plus a goal atom.

Following Section 2.1 of the paper, a DATALOG program consists of a finite
set of rules and a special *goal* atom whose predicate appears in the head of
some rule.  Predicates that appear in rule heads are IDBs; predicates that
only appear in bodies are EDBs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from repro.datalog.atoms import Atom, NegatedAtom
from repro.datalog.rules import Rule
from repro.datalog.terms import AGGREGATE_OPS, Aggregate, Constant, Parameter, Variable
from repro.errors import ValidationError


@dataclass(frozen=True)
class Program:
    """An immutable Datalog program.

    Parameters
    ----------
    rules:
        The rules of the program.
    goal:
        The goal atom.  It is optional so that rule sets can be manipulated
        before a goal is attached; most analyses require a goal.
    """

    rules: Tuple[Rule, ...]
    goal: Optional[Atom] = None

    def __init__(self, rules: Iterable[Rule], goal: Optional[Atom] = None):
        object.__setattr__(self, "rules", tuple(rules))
        object.__setattr__(self, "goal", goal)

    # ------------------------------------------------------------------
    # Predicate classification
    # ------------------------------------------------------------------
    def idb_predicates(self) -> FrozenSet[str]:
        """Predicates defined by some rule head (the derived predicates)."""
        return frozenset(rule.head.predicate for rule in self.rules)

    def edb_predicates(self) -> FrozenSet[str]:
        """Predicates that occur only in rule bodies (the database predicates)."""
        idbs = self.idb_predicates()
        edbs = set()
        for rule in self.rules:
            for atom in rule.body:
                if atom.predicate not in idbs:
                    edbs.add(atom.predicate)
        return frozenset(edbs)

    def predicates(self) -> FrozenSet[str]:
        """All predicate symbols mentioned by the program."""
        names = set()
        for rule in self.rules:
            names.add(rule.head.predicate)
            names.update(atom.predicate for atom in rule.body)
        if self.goal is not None:
            names.add(self.goal.predicate)
        return frozenset(names)

    def predicate_arities(self) -> Dict[str, int]:
        """Mapping from predicate symbol to its arity.

        Raises :class:`ValidationError` if a predicate is used with two
        different arities.
        """
        arities: Dict[str, int] = {}
        atoms = [rule.head for rule in self.rules]
        atoms.extend(atom for rule in self.rules for atom in rule.body)
        if self.goal is not None:
            atoms.append(self.goal)
        for atom in atoms:
            known = arities.get(atom.predicate)
            if known is None:
                arities[atom.predicate] = atom.arity
            elif known != atom.arity:
                raise ValidationError(
                    f"predicate {atom.predicate} used with arities {known} and {atom.arity}"
                )
        return arities

    def is_monadic(self) -> bool:
        """True if every IDB predicate has arity at most one (Section 2.1, definition 2)."""
        arities = self.predicate_arities()
        return all(arities[p] <= 1 for p in self.idb_predicates())

    # ------------------------------------------------------------------
    # Structural access
    # ------------------------------------------------------------------
    def rules_for(self, predicate: str) -> Tuple[Rule, ...]:
        """The rules whose head predicate is *predicate*."""
        return tuple(rule for rule in self.rules if rule.head.predicate == predicate)

    def constants(self) -> Tuple[Constant, ...]:
        """All constants occurring in rules or the goal."""
        seen = []
        for rule in self.rules:
            for constant in rule.constants():
                if constant not in seen:
                    seen.append(constant)
        if self.goal is not None:
            for constant in self.goal.constants():
                if constant not in seen:
                    seen.append(constant)
        return tuple(seen)

    def variables(self) -> Tuple[Variable, ...]:
        """All variables occurring in the rules."""
        seen = []
        for rule in self.rules:
            for var in rule.variables():
                if var not in seen:
                    seen.append(var)
        return tuple(seen)

    def parameters(self) -> Tuple[Parameter, ...]:
        """All parameters of the goal and rules, goal first, in order of occurrence.

        A program with parameters is a *template*: it cannot be evaluated
        directly but can be compiled once per binding pattern into a
        :class:`~repro.datalog.prepared.PreparedQuery` and then executed
        many times with different constants.
        """
        seen = []
        if self.goal is not None:
            for parameter in self.goal.parameters():
                if parameter not in seen:
                    seen.append(parameter)
        for rule in self.rules:
            for parameter in rule.parameters():
                if parameter not in seen:
                    seen.append(parameter)
        return tuple(seen)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def is_safe(self) -> bool:
        """True if every rule is range restricted."""
        return all(rule.is_safe() for rule in self.rules)

    def validate(self) -> None:
        """Check arity consistency, safety, rule groundability, and the goal.

        Goal *parameters* are legal (the program is then a prepared-query
        template); parameters inside rules are not — they must first be
        compiled away into deferred seed rules by
        :func:`repro.datalog.transforms.parameters.parameterize_rules`
        (which :meth:`repro.datalog.session.QuerySession.prepare` does).
        """
        self.predicate_arities()
        uses_negation = False
        uses_aggregates = False
        for rule in self.rules:
            if isinstance(rule.head, NegatedAtom):
                raise ValidationError(
                    f"rule {rule} has a negated head; negation is only legal "
                    "in rule bodies"
                )
            aggregates = [t for t in rule.head.terms if isinstance(t, Aggregate)]
            if aggregates:
                uses_aggregates = True
                if len(aggregates) > 1:
                    raise ValidationError(
                        f"rule {rule} has {len(aggregates)} aggregate head terms; "
                        "at most one is allowed"
                    )
                (aggregate,) = aggregates
                if aggregate.op not in AGGREGATE_OPS:
                    raise ValidationError(
                        f"rule {rule} uses unknown aggregate operator "
                        f"{aggregate.op!r}; expected one of {', '.join(AGGREGATE_OPS)}"
                    )
                if aggregate.variable in (
                    t for t in rule.head.terms if isinstance(t, Variable)
                ):
                    raise ValidationError(
                        f"rule {rule} uses {aggregate.variable} both as a group-by "
                        "head variable and as the aggregated variable"
                    )
            for atom in rule.body:
                if any(isinstance(t, Aggregate) for t in atom.terms):
                    raise ValidationError(
                        f"rule {rule} uses an aggregate term in its body; "
                        "aggregates are only legal in rule heads"
                    )
            if rule.negated_body():
                uses_negation = True
            rule.check_safe()
            if rule.parameters():
                raise ValidationError(
                    f"rule {rule} contains unbound parameters; prepare the query "
                    "(QuerySession.prepare or DatalogService.prepare) instead of "
                    "evaluating the template directly"
                )
        if self.goal is not None:
            if isinstance(self.goal, NegatedAtom):
                raise ValidationError("the goal atom cannot be negated")
            if any(isinstance(t, Aggregate) for t in self.goal.terms):
                raise ValidationError(
                    "the goal atom cannot contain aggregate terms; query the "
                    "aggregate rule's head predicate instead"
                )
            if self.goal.predicate not in self.idb_predicates():
                raise ValidationError(
                    f"goal predicate {self.goal.predicate} is not defined by any rule"
                )
        if uses_negation or uses_aggregates:
            from repro.datalog.analysis import check_stratified

            check_stratified(self)

    # ------------------------------------------------------------------
    # Functional updates
    # ------------------------------------------------------------------
    def with_goal(self, goal: Atom) -> "Program":
        """Return a copy of the program with a different goal."""
        return Program(self.rules, goal)

    def with_rules(self, rules: Iterable[Rule]) -> "Program":
        """Return a copy of the program with a different rule set."""
        return Program(tuple(rules), self.goal)

    def add_rules(self, rules: Iterable[Rule]) -> "Program":
        """Return a copy of the program with extra rules appended."""
        return Program(self.rules + tuple(rules), self.goal)

    def rename_predicates(self, mapping: Dict[str, str]) -> "Program":
        """Consistently rename predicate symbols according to *mapping*."""

        def rename_atom(atom: Atom) -> Atom:
            return atom.rename_predicate(mapping.get(atom.predicate, atom.predicate))

        new_rules = tuple(
            Rule(rename_atom(rule.head), tuple(rename_atom(a) for a in rule.body))
            for rule in self.rules
        )
        new_goal = rename_atom(self.goal) if self.goal is not None else None
        return Program(new_rules, new_goal)

    def __str__(self) -> str:
        lines = []
        if self.goal is not None:
            lines.append(f"?{self.goal}")
        lines.extend(str(rule) for rule in self.rules)
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.rules)
