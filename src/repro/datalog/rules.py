"""Rules (Horn clauses) of Datalog programs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Tuple

from repro.datalog.atoms import Atom, NegatedAtom
from repro.datalog.terms import Constant, Parameter, Term, Variable
from repro.errors import UnsafeRuleError


@dataclass(frozen=True)
class Rule:
    """A rule ``head :- body``.

    ``body`` may be empty, in which case the rule asserts a fact (possibly
    with variables; such rules are only safe when the head is ground).
    """

    head: Atom
    body: Tuple[Atom, ...]

    def __init__(self, head: Atom, body: Iterable[Atom] = ()):  # noqa: D401
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "body", tuple(body))

    def is_fact(self) -> bool:
        """Return ``True`` if the body is empty."""
        return not self.body

    def variables(self) -> Tuple[Variable, ...]:
        """All variables of the rule, in order of first occurrence."""
        seen = []
        for atom in (self.head, *self.body):
            for var in atom.variables():
                if var not in seen:
                    seen.append(var)
        return tuple(seen)

    def constants(self) -> Tuple[Constant, ...]:
        """All constants of the rule, in order of first occurrence."""
        seen = []
        for atom in (self.head, *self.body):
            for constant in atom.constants():
                if constant not in seen:
                    seen.append(constant)
        return tuple(seen)

    def parameters(self) -> Tuple[Parameter, ...]:
        """All parameters of the rule, in order of first occurrence."""
        seen = []
        for atom in (self.head, *self.body):
            for parameter in atom.parameters():
                if parameter not in seen:
                    seen.append(parameter)
        return tuple(seen)

    def bind_parameters(self, bindings: Mapping[str, object]) -> "Rule":
        """Replace bound parameters with constants in head and body."""
        return Rule(
            self.head.bind_parameters(bindings),
            tuple(atom.bind_parameters(bindings) for atom in self.body),
        )

    def body_predicates(self) -> Tuple[str, ...]:
        """Predicate symbols occurring in the body, with duplicates."""
        return tuple(atom.predicate for atom in self.body)

    def positive_body(self) -> Tuple[Atom, ...]:
        """The non-negated body atoms."""
        return tuple(atom for atom in self.body if not isinstance(atom, NegatedAtom))

    def negated_body(self) -> Tuple[Atom, ...]:
        """The negated body atoms."""
        return tuple(atom for atom in self.body if isinstance(atom, NegatedAtom))

    def is_safe(self) -> bool:
        """A rule is safe (range restricted) if every head variable — including
        aggregated ones — and every variable of a negated body literal occurs
        in a *positive* body atom."""
        positive_vars = set()
        for atom in self.positive_body():
            positive_vars.update(atom.variables())
        if not all(var in positive_vars for var in self.head.variables()):
            return False
        for atom in self.negated_body():
            if not all(var in positive_vars for var in atom.variables()):
                return False
        return True

    def check_safe(self) -> None:
        """Raise :class:`UnsafeRuleError` if the rule is not safe."""
        if self.is_safe():
            return
        positive_vars = set()
        for atom in self.positive_body():
            positive_vars.update(atom.variables())
        for atom in self.negated_body():
            loose = [var for var in atom.variables() if var not in positive_vars]
            if loose:
                names = ", ".join(var.name for var in loose)
                raise UnsafeRuleError(
                    f"rule {self} is unsafe: negated literal {atom} uses "
                    f"variable(s) {names} not bound by any positive body atom"
                )
        raise UnsafeRuleError(
            f"rule {self} has head variables not bound by a positive body atom"
        )

    def substitute(self, substitution: Mapping[Variable, Term]) -> "Rule":
        """Apply a substitution to head and body."""
        return Rule(
            self.head.substitute(substitution),
            tuple(atom.substitute(substitution) for atom in self.body),
        )

    def rename_variables(self, suffix: str) -> "Rule":
        """Rename every variable by appending *suffix* (used to avoid capture)."""
        mapping = {var: Variable(var.name + suffix) for var in self.variables()}
        return self.substitute(mapping)

    def __str__(self) -> str:
        if not self.body:
            return f"{self.head}."
        body_text = ", ".join(str(atom) for atom in self.body)
        return f"{self.head} :- {body_text}."

    def __repr__(self) -> str:
        return f"Rule({self.head!r}, {self.body!r})"


def fact(head: Atom) -> Rule:
    """Build a fact rule (empty body) from a ground atom."""
    return Rule(head, ())
