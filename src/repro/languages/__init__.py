"""Formal-language toolkit: grammars, automata, approximations, quotients."""

from repro.languages.alphabet import EPSILON, Word, word, word_from_text, word_to_text
from repro.languages.approximation import (
    RegularEnvelope,
    mohri_nederhof_transform,
    regular_envelope,
    strongly_regular_to_nfa,
)
from repro.languages.cfg import Grammar, Production, format_grammar, parse_grammar
from repro.languages.cfg_analysis import (
    cfg_membership,
    enumerate_finite_language,
    enumerate_language,
    is_empty_language,
    is_finite_language,
    language_sample_equal,
    shortest_word,
    strings_of_length,
)
from repro.languages.cfg_properties import (
    RegularityEvidence,
    is_left_linear,
    is_linear,
    is_right_linear,
    is_self_embedding,
    is_strongly_regular,
    is_unary_alphabet,
    regularity_evidence,
)
from repro.languages.cfg_transforms import (
    eliminate_epsilon,
    eliminate_unit_productions,
    reduce_grammar,
    to_chomsky_normal_form,
)
from repro.languages.quotient import (
    EnvelopeQuotient,
    cfl_quotient_member,
    envelope_quotient,
    regular_quotient,
)
from repro.languages.regular import DFA, NFA
from repro.languages.sampling import random_sentence, random_sentences, sentential_forms
from repro.languages.unary import UltimatelyPeriodicSet, length_set_to_dfa, unary_length_set

__all__ = [
    "DFA",
    "EPSILON",
    "EnvelopeQuotient",
    "Grammar",
    "NFA",
    "Production",
    "RegularEnvelope",
    "RegularityEvidence",
    "UltimatelyPeriodicSet",
    "Word",
    "cfg_membership",
    "cfl_quotient_member",
    "eliminate_epsilon",
    "eliminate_unit_productions",
    "enumerate_finite_language",
    "enumerate_language",
    "envelope_quotient",
    "format_grammar",
    "is_empty_language",
    "is_finite_language",
    "is_left_linear",
    "is_linear",
    "is_right_linear",
    "is_self_embedding",
    "is_strongly_regular",
    "is_unary_alphabet",
    "language_sample_equal",
    "length_set_to_dfa",
    "mohri_nederhof_transform",
    "parse_grammar",
    "random_sentence",
    "random_sentences",
    "reduce_grammar",
    "regular_envelope",
    "regular_quotient",
    "regularity_evidence",
    "sentential_forms",
    "shortest_word",
    "strings_of_length",
    "strongly_regular_to_nfa",
    "to_chomsky_normal_form",
    "unary_length_set",
    "word",
    "word_from_text",
    "word_to_text",
]
