"""Alphabets: finite sets of terminal symbols.

Symbols are plain strings (``"b1"``, ``"par"`` ...).  Words are tuples of
symbols, *not* character strings, because the EDB predicate names that label
chain-program grammars are multi-character.  The empty word is ``()``.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

Word = Tuple[str, ...]

EPSILON: Word = ()


def word(symbols: Iterable[str]) -> Word:
    """Build a word from an iterable of symbols."""
    return tuple(symbols)


def word_from_text(text: str, separator: str = " ") -> Word:
    """Parse a word from text: symbols separated by *separator* (default space).

    An empty string denotes the empty word.
    """
    text = text.strip()
    if not text:
        return EPSILON
    return tuple(text.split(separator))


def word_to_text(value: Sequence[str], separator: str = " ") -> str:
    """Render a word; the empty word renders as ``"ε"``."""
    if not value:
        return "ε"
    return separator.join(value)


def validate_alphabet(symbols: Iterable[str]) -> frozenset:
    """Return the alphabet as a frozenset, rejecting the empty-string symbol."""
    alphabet = frozenset(symbols)
    if "" in alphabet:
        raise ValueError("the empty string cannot be an alphabet symbol")
    return alphabet
