"""DFA minimisation (Moore's partition refinement)."""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.languages.regular.dfa import DFA


def minimize_dfa(dfa: DFA) -> DFA:
    """Return the minimal DFA for ``L(dfa)``.

    The input is first completed and restricted to reachable states; the
    classical partition-refinement algorithm then merges equivalent states.
    The result is renumbered canonically (BFS from the start state), so two
    equivalent languages over the same alphabet yield isomorphic minimal
    DFAs that can be compared structurally.
    """
    total = dfa.complete().reachable()
    states = sorted(total.states, key=repr)
    alphabet = sorted(total.alphabet)

    accepting = set(total.accepting)
    partition_of: Dict[object, int] = {
        state: (0 if state in accepting else 1) for state in states
    }
    # If all states are accepting (or none are) we start with one block.
    blocks = sorted(set(partition_of.values()))
    remap = {block: index for index, block in enumerate(blocks)}
    partition_of = {state: remap[block] for state, block in partition_of.items()}

    changed = True
    while changed:
        changed = False
        signature_to_block: Dict[Tuple, int] = {}
        new_partition: Dict[object, int] = {}
        for state in states:
            signature = (
                partition_of[state],
                tuple(partition_of[total.delta(state, symbol)] for symbol in alphabet),
            )
            if signature not in signature_to_block:
                signature_to_block[signature] = len(signature_to_block)
            new_partition[state] = signature_to_block[signature]
        if new_partition != partition_of:
            partition_of = new_partition
            changed = True

    block_count = len(set(partition_of.values()))
    transitions: Dict[Tuple[int, str], int] = {}
    for state in states:
        for symbol in alphabet:
            transitions[(partition_of[state], symbol)] = partition_of[total.delta(state, symbol)]
    accepting_blocks = {partition_of[state] for state in accepting}
    minimal = DFA(
        range(block_count),
        total.alphabet,
        transitions,
        partition_of[total.start],
        accepting_blocks,
    )
    return minimal.reachable().renumber()


def nerode_index(dfa: DFA) -> int:
    """The number of states of the minimal DFA (the Myhill–Nerode index)."""
    return len(minimize_dfa(dfa).states)
