"""Equivalence and inclusion of regular languages."""

from __future__ import annotations

from typing import Optional, Tuple, Union

from repro.languages.alphabet import Word
from repro.languages.regular.dfa import DFA
from repro.languages.regular.nfa import NFA
from repro.languages.regular.operations import dfa_difference, dfa_symmetric_difference
from repro.languages.regular.properties import is_empty_language, shortest_accepted_word

Automaton = Union[DFA, NFA]


def _as_dfa(automaton: Automaton) -> DFA:
    if isinstance(automaton, DFA):
        return automaton
    return automaton.to_dfa()


def is_subset(left: Automaton, right: Automaton) -> bool:
    """``L(left) ⊆ L(right)``."""
    return is_empty_language(dfa_difference(_as_dfa(left), _as_dfa(right)))


def is_equivalent(left: Automaton, right: Automaton) -> bool:
    """``L(left) = L(right)``."""
    return is_empty_language(dfa_symmetric_difference(_as_dfa(left), _as_dfa(right)))


def difference_witness(left: Automaton, right: Automaton) -> Optional[Word]:
    """A shortest word in exactly one of the two languages, or ``None`` if equal."""
    return shortest_accepted_word(dfa_symmetric_difference(_as_dfa(left), _as_dfa(right)))


def containment_witness(left: Automaton, right: Automaton) -> Optional[Word]:
    """A shortest word of ``L(left) - L(right)``, or ``None`` if contained."""
    return shortest_accepted_word(dfa_difference(_as_dfa(left), _as_dfa(right)))


def compare(left: Automaton, right: Automaton) -> Tuple[bool, bool]:
    """Return ``(left ⊆ right, right ⊆ left)``."""
    return is_subset(left, right), is_subset(right, left)
