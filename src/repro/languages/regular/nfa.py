"""Nondeterministic finite automata (with ε-transitions)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Set, Tuple

from repro.languages.alphabet import Word

Transition = Tuple[object, Optional[str]]


@dataclass(frozen=True)
class NFA:
    """An NFA: states are arbitrary hashable objects; ``None`` labels ε-transitions."""

    states: FrozenSet[object]
    alphabet: FrozenSet[str]
    transitions: Mapping[Transition, FrozenSet[object]]
    start: object
    accepting: FrozenSet[object]

    def __init__(
        self,
        states: Iterable[object],
        alphabet: Iterable[str],
        transitions: Mapping[Transition, Iterable[object]],
        start: object,
        accepting: Iterable[object],
    ):
        object.__setattr__(self, "states", frozenset(states))
        object.__setattr__(self, "alphabet", frozenset(alphabet))
        normalized: Dict[Transition, FrozenSet[object]] = {
            key: frozenset(value) for key, value in transitions.items() if value
        }
        object.__setattr__(self, "transitions", normalized)
        object.__setattr__(self, "start", start)
        object.__setattr__(self, "accepting", frozenset(accepting))

    # ------------------------------------------------------------------
    def epsilon_closure(self, states: Iterable[object]) -> FrozenSet[object]:
        """ε-closure of a set of states."""
        closure: Set[object] = set(states)
        frontier = list(closure)
        while frontier:
            state = frontier.pop()
            for target in self.transitions.get((state, None), ()):  # ε moves
                if target not in closure:
                    closure.add(target)
                    frontier.append(target)
        return frozenset(closure)

    def step(self, states: Iterable[object], symbol: str) -> FrozenSet[object]:
        """One symbol step (including the closing ε-closure)."""
        moved: Set[object] = set()
        for state in states:
            moved.update(self.transitions.get((state, symbol), ()))
        return self.epsilon_closure(moved)

    def accepts(self, sentence: Word) -> bool:
        """Membership test."""
        current = self.epsilon_closure({self.start})
        for symbol in sentence:
            current = self.step(current, symbol)
            if not current:
                return False
        return bool(current & self.accepting)

    def reachable_states(self) -> FrozenSet[object]:
        """States reachable from the start state (via any transitions)."""
        seen: Set[object] = {self.start}
        frontier = [self.start]
        while frontier:
            state = frontier.pop()
            for (source, _symbol), targets in self.transitions.items():
                if source != state:
                    continue
                for target in targets:
                    if target not in seen:
                        seen.add(target)
                        frontier.append(target)
        return frozenset(seen)

    def renumber(self) -> "NFA":
        """Rename states to consecutive integers (stable on repr ordering)."""
        ordering = {state: index for index, state in enumerate(sorted(self.states, key=repr))}
        transitions: Dict[Transition, Set[object]] = {}
        for (state, symbol), targets in self.transitions.items():
            transitions[(ordering[state], symbol)] = {ordering[t] for t in targets}
        return NFA(
            ordering.values(),
            self.alphabet,
            transitions,
            ordering[self.start],
            {ordering[state] for state in self.accepting},
        )

    def to_dfa(self) -> "DFA":
        """Subset construction."""
        from repro.languages.regular.dfa import DFA

        start = self.epsilon_closure({self.start})
        states = {start}
        transitions: Dict[Tuple[FrozenSet[object], str], FrozenSet[object]] = {}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for symbol in self.alphabet:
                target = self.step(current, symbol)
                if not target:
                    continue
                transitions[(current, symbol)] = target
                if target not in states:
                    states.add(target)
                    frontier.append(target)
        accepting = {state for state in states if state & self.accepting}
        return DFA(states, self.alphabet, transitions, start, accepting).renumber()

    def with_alphabet(self, alphabet: Iterable[str]) -> "NFA":
        """Extend the alphabet (no new transitions are added)."""
        return NFA(
            self.states, set(self.alphabet) | set(alphabet), self.transitions, self.start, self.accepting
        )


def literal_nfa(sentence: Word, alphabet: Optional[Iterable[str]] = None) -> NFA:
    """An NFA accepting exactly one word."""
    states = list(range(len(sentence) + 1))
    transitions = {(i, symbol): {i + 1} for i, symbol in enumerate(sentence)}
    return NFA(
        states,
        set(alphabet) if alphabet is not None else set(sentence),
        transitions,
        0,
        {len(sentence)},
    )
