"""Regular-language algebra: boolean operations, concatenation, star, reversal, quotients.

The quotient operation is the one Section 7 of the paper is built on: the
magic set of a chain-program rule corresponds to the quotient ``L(H)/R`` of
the program's language by a regular language read off the rule.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Set, Tuple

from repro.languages.regular.dfa import DFA
from repro.languages.regular.nfa import NFA


# ----------------------------------------------------------------------
# NFA constructions (Thompson-style)
# ----------------------------------------------------------------------
def _tag(nfa: NFA, tag: str) -> NFA:
    """Rename states by wrapping them in a tagged tuple, so unions are disjoint."""
    mapping = {state: (tag, state) for state in nfa.states}
    transitions = {
        ((tag, state), symbol): {(tag, target) for target in targets}
        for (state, symbol), targets in nfa.transitions.items()
    }
    return NFA(
        mapping.values(),
        nfa.alphabet,
        transitions,
        (tag, nfa.start),
        {(tag, state) for state in nfa.accepting},
    )


def nfa_union(left: NFA, right: NFA) -> NFA:
    """Language union."""
    left_tagged = _tag(left, "L")
    right_tagged = _tag(right, "R")
    start = ("U", "start")
    transitions: Dict = dict(left_tagged.transitions)
    transitions.update(right_tagged.transitions)
    transitions[(start, None)] = {left_tagged.start, right_tagged.start}
    return NFA(
        set(left_tagged.states) | set(right_tagged.states) | {start},
        set(left.alphabet) | set(right.alphabet),
        transitions,
        start,
        set(left_tagged.accepting) | set(right_tagged.accepting),
    )


def nfa_concat(left: NFA, right: NFA) -> NFA:
    """Language concatenation."""
    left_tagged = _tag(left, "L")
    right_tagged = _tag(right, "R")
    transitions: Dict = dict(left_tagged.transitions)
    transitions.update(right_tagged.transitions)
    for state in left_tagged.accepting:
        existing = set(transitions.get((state, None), set()))
        existing.add(right_tagged.start)
        transitions[(state, None)] = existing
    return NFA(
        set(left_tagged.states) | set(right_tagged.states),
        set(left.alphabet) | set(right.alphabet),
        transitions,
        left_tagged.start,
        right_tagged.accepting,
    )


def nfa_star(inner: NFA) -> NFA:
    """Kleene star."""
    tagged = _tag(inner, "S")
    start = ("S", "start")
    transitions: Dict = dict(tagged.transitions)
    transitions[(start, None)] = {tagged.start}
    for state in tagged.accepting:
        existing = set(transitions.get((state, None), set()))
        existing.add(tagged.start)
        transitions[(state, None)] = existing
    return NFA(
        set(tagged.states) | {start},
        inner.alphabet,
        transitions,
        start,
        set(tagged.accepting) | {start},
    )


def nfa_reverse(nfa: NFA) -> NFA:
    """The reversal of the language."""
    transitions: Dict = {}
    for (state, symbol), targets in nfa.transitions.items():
        for target in targets:
            transitions.setdefault((target, symbol), set()).add(state)
    start = ("REV", "start")
    transitions[(start, None)] = set(nfa.accepting)
    return NFA(
        set(nfa.states) | {start},
        nfa.alphabet,
        transitions,
        start,
        {nfa.start},
    )


def empty_language_nfa(alphabet: Iterable[str]) -> NFA:
    """An NFA accepting nothing."""
    return NFA({0}, alphabet, {}, 0, set())


def epsilon_nfa(alphabet: Iterable[str]) -> NFA:
    """An NFA accepting only the empty word."""
    return NFA({0}, alphabet, {}, 0, {0})


def symbol_nfa(symbol: str, alphabet: Iterable[str] = ()) -> NFA:
    """An NFA accepting exactly the one-symbol word."""
    return NFA({0, 1}, set(alphabet) | {symbol}, {(0, symbol): {1}}, 0, {1})


def sigma_star_nfa(alphabet: Iterable[str]) -> NFA:
    """An NFA accepting every word over the alphabet."""
    symbols = set(alphabet)
    return NFA({0}, symbols, {(0, symbol): {0} for symbol in symbols}, 0, {0})


# ----------------------------------------------------------------------
# DFA product constructions
# ----------------------------------------------------------------------
def _product(left: DFA, right: DFA, accept) -> DFA:
    alphabet = set(left.alphabet) | set(right.alphabet)
    left_total = left.complete(alphabet)
    right_total = right.complete(alphabet)
    start = (left_total.start, right_total.start)
    states: Set[Tuple] = {start}
    transitions: Dict[Tuple[Tuple, str], Tuple] = {}
    frontier = [start]
    while frontier:
        current = frontier.pop()
        for symbol in alphabet:
            target = (
                left_total.delta(current[0], symbol),
                right_total.delta(current[1], symbol),
            )
            transitions[(current, symbol)] = target
            if target not in states:
                states.add(target)
                frontier.append(target)
    accepting = {
        state
        for state in states
        if accept(state[0] in left_total.accepting, state[1] in right_total.accepting)
    }
    return DFA(states, alphabet, transitions, start, accepting).renumber()


def dfa_intersection(left: DFA, right: DFA) -> DFA:
    """Language intersection."""
    return _product(left, right, lambda a, b: a and b)


def dfa_union(left: DFA, right: DFA) -> DFA:
    """Language union."""
    return _product(left, right, lambda a, b: a or b)


def dfa_difference(left: DFA, right: DFA) -> DFA:
    """Language difference ``L(left) - L(right)``."""
    return _product(left, right, lambda a, b: a and not b)


def dfa_symmetric_difference(left: DFA, right: DFA) -> DFA:
    """Symmetric difference (useful for equivalence checking)."""
    return _product(left, right, lambda a, b: a != b)


def dfa_complement(dfa: DFA, alphabet: Iterable[str] = ()) -> DFA:
    """Complement with respect to ``(dfa.alphabet ∪ alphabet)*``."""
    total = dfa.complete(alphabet)
    return total.with_accepting(set(total.states) - set(total.accepting))


# ----------------------------------------------------------------------
# Quotients and closures
# ----------------------------------------------------------------------
def right_quotient(language: DFA, divisor: NFA) -> DFA:
    """The right quotient ``L / R = { x | exists y in R with xy in L }``.

    This is the paper's Section 7 quotient: ``language`` plays the role of
    ``L(H)`` (or its regular envelope) and ``divisor`` the per-rule regular
    language ``R``.  The construction marks as accepting every state of
    ``language`` from which some word of ``divisor`` leads to acceptance.
    """
    divisor_dfa = divisor.to_dfa()
    alphabet = set(language.alphabet) | set(divisor_dfa.alphabet)
    language_total = language.complete(alphabet)
    divisor_total = divisor_dfa.complete(alphabet)

    # Build the product graph and compute which pairs can reach a doubly
    # accepting pair (co-reachability).
    pairs = {
        (l_state, r_state)
        for l_state in language_total.states
        for r_state in divisor_total.states
    }
    forward: Dict[Tuple, Set[Tuple]] = {pair: set() for pair in pairs}
    for (l_state, r_state) in pairs:
        for symbol in alphabet:
            target = (
                language_total.delta(l_state, symbol),
                divisor_total.delta(r_state, symbol),
            )
            forward[(l_state, r_state)].add(target)
    good = {
        pair
        for pair in pairs
        if pair[0] in language_total.accepting and pair[1] in divisor_total.accepting
    }
    # Reverse reachability to the good set.
    reverse: Dict[Tuple, Set[Tuple]] = {pair: set() for pair in pairs}
    for source, targets in forward.items():
        for target in targets:
            reverse.setdefault(target, set()).add(source)
    co_reachable = set(good)
    frontier = list(good)
    while frontier:
        pair = frontier.pop()
        for predecessor in reverse.get(pair, ()):  # pragma: no branch
            if predecessor not in co_reachable:
                co_reachable.add(predecessor)
                frontier.append(predecessor)

    accepting = {
        state
        for state in language_total.states
        if (state, divisor_total.start) in co_reachable
    }
    return language_total.with_accepting(accepting).reachable().renumber()


def left_quotient(language: DFA, divisor: NFA) -> DFA:
    """The left quotient ``R \\ L = { y | exists x in R with xy in L }``."""
    from repro.languages.regular.nfa import NFA as _NFA

    reversed_language = nfa_reverse(language.to_nfa()).to_dfa()
    reversed_divisor = nfa_reverse(divisor)
    reversed_quotient = right_quotient(reversed_language, reversed_divisor)
    del _NFA
    return nfa_reverse(reversed_quotient.to_nfa()).to_dfa()


def prefix_closure(dfa: DFA) -> DFA:
    """The language of all prefixes of words of ``L(dfa)``."""
    trimmed = dfa.reachable()
    # A state is useful if an accepting state is reachable from it.
    reverse: Dict[object, Set[object]] = {}
    for (state, _symbol), target in trimmed.transitions.items():
        reverse.setdefault(target, set()).add(state)
    useful = set(trimmed.accepting)
    frontier = list(trimmed.accepting)
    while frontier:
        state = frontier.pop()
        for predecessor in reverse.get(state, ()):  # pragma: no branch
            if predecessor not in useful:
                useful.add(predecessor)
                frontier.append(predecessor)
    return trimmed.with_accepting(useful)
