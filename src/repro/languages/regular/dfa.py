"""Deterministic finite automata."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Set, Tuple

from repro.languages.alphabet import Word

DEAD_STATE = "__dead__"


@dataclass(frozen=True)
class DFA:
    """A (possibly partial) DFA: missing transitions are implicitly rejecting."""

    states: FrozenSet[object]
    alphabet: FrozenSet[str]
    transitions: Mapping[Tuple[object, str], object]
    start: object
    accepting: FrozenSet[object]

    def __init__(
        self,
        states: Iterable[object],
        alphabet: Iterable[str],
        transitions: Mapping[Tuple[object, str], object],
        start: object,
        accepting: Iterable[object],
    ):
        object.__setattr__(self, "states", frozenset(states))
        object.__setattr__(self, "alphabet", frozenset(alphabet))
        object.__setattr__(self, "transitions", dict(transitions))
        object.__setattr__(self, "start", start)
        object.__setattr__(self, "accepting", frozenset(accepting))

    # ------------------------------------------------------------------
    def delta(self, state: object, symbol: str) -> Optional[object]:
        """The transition function; ``None`` when undefined (implicit dead state)."""
        return self.transitions.get((state, symbol))

    def run(self, sentence: Word) -> Optional[object]:
        """The state reached after reading the word, or ``None`` if the run dies."""
        state = self.start
        for symbol in sentence:
            state = self.delta(state, symbol)
            if state is None:
                return None
        return state

    def accepts(self, sentence: Word) -> bool:
        """Membership test."""
        state = self.run(sentence)
        return state is not None and state in self.accepting

    # ------------------------------------------------------------------
    def complete(self, alphabet: Optional[Iterable[str]] = None) -> "DFA":
        """Return a total DFA over the (possibly extended) alphabet."""
        symbols = set(self.alphabet)
        if alphabet is not None:
            symbols |= set(alphabet)
        transitions: Dict[Tuple[object, str], object] = dict(self.transitions)
        states: Set[object] = set(self.states)
        needs_dead = False
        for state in self.states:
            for symbol in symbols:
                if (state, symbol) not in transitions:
                    transitions[(state, symbol)] = DEAD_STATE
                    needs_dead = True
        if needs_dead:
            states.add(DEAD_STATE)
            for symbol in symbols:
                transitions[(DEAD_STATE, symbol)] = DEAD_STATE
        return DFA(states, symbols, transitions, self.start, self.accepting)

    def reachable(self) -> "DFA":
        """Restrict to states reachable from the start state."""
        seen: Set[object] = {self.start}
        frontier = [self.start]
        while frontier:
            state = frontier.pop()
            for symbol in self.alphabet:
                target = self.delta(state, symbol)
                if target is not None and target not in seen:
                    seen.add(target)
                    frontier.append(target)
        transitions = {
            (state, symbol): target
            for (state, symbol), target in self.transitions.items()
            if state in seen and target in seen
        }
        return DFA(seen, self.alphabet, transitions, self.start, self.accepting & seen)

    def renumber(self) -> "DFA":
        """Rename states to consecutive integers (BFS order from the start state)."""
        ordering: Dict[object, int] = {self.start: 0}
        frontier = [self.start]
        while frontier:
            state = frontier.pop(0)
            for symbol in sorted(self.alphabet):
                target = self.delta(state, symbol)
                if target is not None and target not in ordering:
                    ordering[target] = len(ordering)
                    frontier.append(target)
        for state in sorted(self.states, key=repr):
            if state not in ordering:
                ordering[state] = len(ordering)
        transitions = {
            (ordering[state], symbol): ordering[target]
            for (state, symbol), target in self.transitions.items()
        }
        return DFA(
            ordering.values(),
            self.alphabet,
            transitions,
            0,
            {ordering[state] for state in self.accepting},
        )

    def to_nfa(self):
        """View the DFA as an NFA."""
        from repro.languages.regular.nfa import NFA

        transitions = {
            (state, symbol): {target} for (state, symbol), target in self.transitions.items()
        }
        return NFA(self.states, self.alphabet, transitions, self.start, self.accepting)

    def with_accepting(self, accepting: Iterable[object]) -> "DFA":
        """Return a copy with a different accepting set."""
        return DFA(self.states, self.alphabet, self.transitions, self.start, accepting)

    def __len__(self) -> int:
        return len(self.states)
