"""Decision procedures and enumeration for regular languages."""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.languages.alphabet import Word
from repro.languages.regular.dfa import DFA
from repro.languages.regular.nfa import NFA

Automaton = Union[DFA, NFA]


def _as_dfa(automaton: Automaton) -> DFA:
    if isinstance(automaton, DFA):
        return automaton
    return automaton.to_dfa()


def is_empty_language(automaton: Automaton) -> bool:
    """True if the automaton accepts no word."""
    dfa = _as_dfa(automaton).reachable()
    return not dfa.accepting


def is_universal(automaton: Automaton) -> bool:
    """True if the automaton accepts every word over its alphabet."""
    from repro.languages.regular.operations import dfa_complement

    return is_empty_language(dfa_complement(_as_dfa(automaton)))


def is_finite_language(automaton: Automaton) -> bool:
    """True if the accepted language is finite.

    The language is infinite iff some cycle lies on a path from the start
    state to an accepting state.
    """
    dfa = _as_dfa(automaton).reachable()
    if not dfa.accepting:
        return True
    # Useful states: reachable (all are) and co-reachable to acceptance.
    reverse: Dict[object, Set[object]] = {}
    for (state, _symbol), target in dfa.transitions.items():
        reverse.setdefault(target, set()).add(state)
    useful = set(dfa.accepting)
    frontier = list(dfa.accepting)
    while frontier:
        state = frontier.pop()
        for predecessor in reverse.get(state, ()):  # pragma: no branch
            if predecessor not in useful:
                useful.add(predecessor)
                frontier.append(predecessor)
    # Cycle detection restricted to useful states.
    color: Dict[object, int] = {}

    def has_cycle(state: object) -> bool:
        color[state] = 1
        for symbol in dfa.alphabet:
            target = dfa.delta(state, symbol)
            if target is None or target not in useful:
                continue
            status = color.get(target, 0)
            if status == 1:
                return True
            if status == 0 and has_cycle(target):
                return True
        color[state] = 2
        return False

    return not any(has_cycle(state) for state in useful if color.get(state, 0) == 0)


def shortest_accepted_word(automaton: Automaton) -> Optional[Word]:
    """A shortest accepted word (BFS), or ``None`` if the language is empty."""
    dfa = _as_dfa(automaton)
    queue = deque([(dfa.start, ())])
    visited = {dfa.start}
    while queue:
        state, word = queue.popleft()
        if state in dfa.accepting:
            return word
        for symbol in sorted(dfa.alphabet):
            target = dfa.delta(state, symbol)
            if target is not None and target not in visited:
                visited.add(target)
                queue.append((target, word + (symbol,)))
    return None


def enumerate_words(
    automaton: Automaton, max_length: int, max_count: Optional[int] = None
) -> List[Word]:
    """All accepted words up to *max_length* in length-lexicographic order."""
    dfa = _as_dfa(automaton)
    results: List[Word] = []
    layer: List[Tuple[object, Word]] = [(dfa.start, ())]
    for length in range(max_length + 1):
        for state, word in sorted(layer, key=lambda item: item[1]):
            if state in dfa.accepting:
                results.append(word)
                if max_count is not None and len(results) >= max_count:
                    return results
        next_layer: List[Tuple[object, Word]] = []
        for state, word in layer:
            for symbol in sorted(dfa.alphabet):
                target = dfa.delta(state, symbol)
                if target is not None:
                    next_layer.append((target, word + (symbol,)))
        layer = next_layer
        if not layer:
            break
    return results


def words_of_length(automaton: Automaton, length: int) -> List[Word]:
    """All accepted words of exactly the given length."""
    return [word for word in enumerate_words(automaton, length) if len(word) == length]
