"""Regular expressions: AST, parser, Thompson construction, and state elimination.

Section 7 of the paper builds, for each chain rule, a regular expression by
replacing every nonterminal with ``*`` (here rendered as ``Σ*``) and keeping
the terminals; those expressions are compiled to NFAs here and fed to the
quotient construction.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple, Union

from repro.errors import ParseError
from repro.languages.regular.dfa import DFA
from repro.languages.regular.nfa import NFA
from repro.languages.regular.operations import (
    empty_language_nfa,
    epsilon_nfa,
    nfa_concat,
    nfa_star,
    nfa_union,
    sigma_star_nfa,
    symbol_nfa,
)


class Regex:
    """Base class of regular-expression AST nodes."""

    def to_nfa(self, alphabet: Iterable[str] = ()) -> NFA:
        """Compile to an NFA over at least the given alphabet."""
        raise NotImplementedError

    def __or__(self, other: "Regex") -> "Regex":
        return Union_((self, other))

    def __add__(self, other: "Regex") -> "Regex":
        return Concat((self, other))

    def star(self) -> "Regex":
        """Kleene star of this expression."""
        return Star(self)


@dataclass(frozen=True)
class EmptySet(Regex):
    """The empty language."""

    def to_nfa(self, alphabet: Iterable[str] = ()) -> NFA:
        return empty_language_nfa(alphabet)

    def __str__(self) -> str:
        return "∅"


@dataclass(frozen=True)
class Epsilon(Regex):
    """The language containing only the empty word."""

    def to_nfa(self, alphabet: Iterable[str] = ()) -> NFA:
        return epsilon_nfa(alphabet)

    def __str__(self) -> str:
        return "ε"


@dataclass(frozen=True)
class Symbol(Regex):
    """A single alphabet symbol."""

    name: str

    def to_nfa(self, alphabet: Iterable[str] = ()) -> NFA:
        return symbol_nfa(self.name, alphabet)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class AnyStar(Regex):
    """``Σ*`` over a fixed alphabet — the paper's ``*`` placeholder."""

    alphabet: FrozenSet[str]

    def __init__(self, alphabet: Iterable[str]):
        object.__setattr__(self, "alphabet", frozenset(alphabet))

    def to_nfa(self, alphabet: Iterable[str] = ()) -> NFA:
        return sigma_star_nfa(set(self.alphabet) | set(alphabet))

    def __str__(self) -> str:
        return "Σ*"


@dataclass(frozen=True)
class Concat(Regex):
    """Concatenation of sub-expressions."""

    parts: Tuple[Regex, ...]

    def __init__(self, parts: Iterable[Regex]):
        object.__setattr__(self, "parts", tuple(parts))

    def to_nfa(self, alphabet: Iterable[str] = ()) -> NFA:
        if not self.parts:
            return epsilon_nfa(alphabet)
        result = self.parts[0].to_nfa(alphabet)
        for part in self.parts[1:]:
            result = nfa_concat(result, part.to_nfa(alphabet))
        return result

    def __str__(self) -> str:
        return " ".join(_wrap(part) for part in self.parts) if self.parts else "ε"


@dataclass(frozen=True)
class Union_(Regex):
    """Union (alternation) of sub-expressions."""

    parts: Tuple[Regex, ...]

    def __init__(self, parts: Iterable[Regex]):
        object.__setattr__(self, "parts", tuple(parts))

    def to_nfa(self, alphabet: Iterable[str] = ()) -> NFA:
        if not self.parts:
            return empty_language_nfa(alphabet)
        result = self.parts[0].to_nfa(alphabet)
        for part in self.parts[1:]:
            result = nfa_union(result, part.to_nfa(alphabet))
        return result

    def __str__(self) -> str:
        return " | ".join(str(part) for part in self.parts) if self.parts else "∅"


@dataclass(frozen=True)
class Star(Regex):
    """Kleene star of a sub-expression."""

    inner: Regex

    def to_nfa(self, alphabet: Iterable[str] = ()) -> NFA:
        return nfa_star(self.inner.to_nfa(alphabet))

    def __str__(self) -> str:
        return f"{_wrap(self.inner)}*"


def _wrap(expression: Regex) -> str:
    text = str(expression)
    if isinstance(expression, (Union_, Concat)) and len(expression.parts) > 1:
        return f"({text})"
    return text


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------
_TOKEN = re.compile(r"\s*(?:(?P<sym>[A-Za-z0-9_]+)|(?P<op>[()|*])|(?P<eps>ε))")


def parse_regex(text: str) -> Regex:
    """Parse a regular expression.

    Symbols are identifiers (``b1``, ``par`` ...); juxtaposition (separated by
    whitespace or parentheses) is concatenation; ``|`` is union, ``*`` the
    Kleene star, ``ε`` the empty word.
    """
    tokens: List[Tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN.match(text, position)
        if match is None:
            if text[position:].strip():
                raise ParseError(f"cannot tokenize regex at: {text[position:]!r}")
            break
        if match.group("sym") is not None:
            tokens.append(("sym", match.group("sym")))
        elif match.group("eps") is not None:
            tokens.append(("eps", "ε"))
        else:
            tokens.append(("op", match.group("op")))
        position = match.end()

    index = [0]

    def peek() -> Optional[Tuple[str, str]]:
        return tokens[index[0]] if index[0] < len(tokens) else None

    def advance() -> Tuple[str, str]:
        token = peek()
        if token is None:
            raise ParseError("unexpected end of regular expression")
        index[0] += 1
        return token

    def parse_union() -> Regex:
        parts = [parse_concat()]
        while peek() == ("op", "|"):
            advance()
            parts.append(parse_concat())
        return parts[0] if len(parts) == 1 else Union_(parts)

    def parse_concat() -> Regex:
        parts: List[Regex] = []
        while True:
            token = peek()
            if token is None or token in (("op", ")"), ("op", "|")):
                break
            parts.append(parse_postfix())
        if not parts:
            return Epsilon()
        return parts[0] if len(parts) == 1 else Concat(parts)

    def parse_postfix() -> Regex:
        expression = parse_primary()
        while peek() == ("op", "*"):
            advance()
            expression = Star(expression)
        return expression

    def parse_primary() -> Regex:
        kind, value = advance()
        if kind == "sym":
            return Symbol(value)
        if kind == "eps":
            return Epsilon()
        if (kind, value) == ("op", "("):
            inner = parse_union()
            closing = advance()
            if closing != ("op", ")"):
                raise ParseError("expected ')' in regular expression")
            return inner
        raise ParseError(f"unexpected token {value!r} in regular expression")

    expression = parse_union()
    if peek() is not None:
        raise ParseError(f"trailing tokens in regular expression: {tokens[index[0]:]}")
    return expression


# ----------------------------------------------------------------------
# Automaton -> regex (state elimination)
# ----------------------------------------------------------------------
def automaton_to_regex(automaton: Union[DFA, NFA]) -> Regex:
    """Convert an automaton to an equivalent regular expression by state elimination."""
    dfa = automaton if isinstance(automaton, DFA) else automaton.to_dfa()
    dfa = dfa.reachable().renumber()

    initial = "I"
    final = "F"
    labels: Dict[Tuple[object, object], Regex] = {}

    def add(source, target, expression: Regex) -> None:
        existing = labels.get((source, target))
        labels[(source, target)] = expression if existing is None else Union_((existing, expression))

    for (state, symbol), target in dfa.transitions.items():
        add(state, target, Symbol(symbol))
    add(initial, dfa.start, Epsilon())
    for state in dfa.accepting:
        add(state, final, Epsilon())

    states = sorted(dfa.states, key=repr)
    for state in states:
        loop = labels.pop((state, state), None)
        loop_regex: Regex = Star(loop) if loop is not None else Epsilon()
        incoming = [(source, expr) for (source, target), expr in labels.items() if target == state and source != state]
        outgoing = [(target, expr) for (source, target), expr in labels.items() if source == state and target != state]
        for source, in_expr in incoming:
            for target, out_expr in outgoing:
                add(source, target, Concat((in_expr, loop_regex, out_expr)))
        labels = {
            key: expr
            for key, expr in labels.items()
            if key[0] != state and key[1] != state
        }

    result = labels.get((initial, final))
    return result if result is not None else EmptySet()
