"""Standard context-free grammar transformations.

Reduction (removal of useless symbols), ε-elimination, unit elimination, and
conversion to Chomsky normal form.  These are the textbook constructions from
Hopcroft & Ullman (reference [20] of the paper); the decision procedures in
:mod:`repro.languages.cfg_analysis` build on them.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.errors import LanguageAnalysisError
from repro.languages.cfg import Grammar, Production


# ----------------------------------------------------------------------
# Useless-symbol removal
# ----------------------------------------------------------------------
def generating_nonterminals(grammar: Grammar) -> FrozenSet[str]:
    """Nonterminals that derive at least one terminal string."""
    generating: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for production in grammar.productions:
            if production.lhs in generating:
                continue
            if all(
                symbol in grammar.terminals or symbol in generating for symbol in production.rhs
            ):
                generating.add(production.lhs)
                changed = True
    return frozenset(generating)


def reachable_symbols(grammar: Grammar) -> FrozenSet[str]:
    """Symbols reachable from the start symbol."""
    reachable: Set[str] = {grammar.start}
    frontier = [grammar.start]
    production_map = grammar.production_map()
    while frontier:
        symbol = frontier.pop()
        for rhs in production_map.get(symbol, ()):
            for child in rhs:
                if child not in reachable:
                    reachable.add(child)
                    if child in grammar.nonterminals:
                        frontier.append(child)
    return frozenset(reachable)


def reduce_grammar(grammar: Grammar) -> Grammar:
    """Remove non-generating and unreachable symbols (in that order).

    If the start symbol itself is not generating, the result is a grammar
    with the start symbol and no productions (its language is empty).
    """
    generating = generating_nonterminals(grammar)
    if grammar.start not in generating:
        return Grammar({grammar.start}, frozenset(), (), grammar.start)
    kept = [
        production
        for production in grammar.productions
        if production.lhs in generating
        and all(
            symbol in grammar.terminals or symbol in generating for symbol in production.rhs
        )
    ]
    intermediate = Grammar(
        generating, grammar.terminals, kept, grammar.start
    )
    reachable = reachable_symbols(intermediate)
    final_productions = [
        production
        for production in intermediate.productions
        if production.lhs in reachable
        and all(symbol in reachable for symbol in production.rhs)
    ]
    nonterminals = {s for s in reachable if s in intermediate.nonterminals} | {grammar.start}
    terminals = {s for s in reachable if s in grammar.terminals}
    return Grammar(nonterminals, terminals, final_productions, grammar.start)


# ----------------------------------------------------------------------
# ε-elimination
# ----------------------------------------------------------------------
def nullable_nonterminals(grammar: Grammar) -> FrozenSet[str]:
    """Nonterminals that derive the empty word."""
    nullable: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for production in grammar.productions:
            if production.lhs in nullable:
                continue
            if all(symbol in nullable for symbol in production.rhs):
                nullable.add(production.lhs)
                changed = True
    return frozenset(nullable)


def eliminate_epsilon(grammar: Grammar) -> Tuple[Grammar, bool]:
    """Remove ε-productions.

    Returns the new grammar and a flag telling whether the original language
    contained the empty word (the new grammar never generates ε).
    """
    nullable = nullable_nonterminals(grammar)
    start_nullable = grammar.start in nullable
    new_productions: Set[Production] = set()
    for production in grammar.productions:
        rhs = production.rhs
        nullable_positions = [i for i, symbol in enumerate(rhs) if symbol in nullable]
        # Enumerate all subsets of nullable positions to drop.
        count = len(nullable_positions)
        if count > 16:
            raise LanguageAnalysisError(
                f"too many nullable symbols in one production ({count}) for ε-elimination"
            )
        for mask in range(1 << count):
            dropped = {
                nullable_positions[bit] for bit in range(count) if mask & (1 << bit)
            }
            new_rhs = tuple(symbol for i, symbol in enumerate(rhs) if i not in dropped)
            if new_rhs:
                new_productions.add(Production(production.lhs, new_rhs))
    result = Grammar(
        grammar.nonterminals, grammar.terminals, sorted(new_productions, key=str), grammar.start
    )
    return result, start_nullable


# ----------------------------------------------------------------------
# Unit elimination
# ----------------------------------------------------------------------
def eliminate_unit_productions(grammar: Grammar) -> Grammar:
    """Remove productions of the form ``A -> B`` with ``B`` a nonterminal.

    Assumes ε-productions have already been removed.
    """
    unit_pairs: Set[Tuple[str, str]] = {(n, n) for n in grammar.nonterminals}
    changed = True
    while changed:
        changed = False
        for production in grammar.productions:
            if len(production.rhs) == 1 and production.rhs[0] in grammar.nonterminals:
                for (a, b) in list(unit_pairs):
                    if b == production.lhs and (a, production.rhs[0]) not in unit_pairs:
                        unit_pairs.add((a, production.rhs[0]))
                        changed = True
    new_productions: Set[Production] = set()
    for (a, b) in unit_pairs:
        for production in grammar.productions_for(b):
            if len(production.rhs) == 1 and production.rhs[0] in grammar.nonterminals:
                continue
            new_productions.add(Production(a, production.rhs))
    return Grammar(
        grammar.nonterminals, grammar.terminals, sorted(new_productions, key=str), grammar.start
    )


# ----------------------------------------------------------------------
# Chomsky normal form
# ----------------------------------------------------------------------
def to_chomsky_normal_form(grammar: Grammar) -> Tuple[Grammar, bool]:
    """Convert to Chomsky normal form.

    Returns ``(cnf_grammar, accepts_epsilon)``.  The CNF grammar never
    generates ε; if the original language contains the empty word the flag
    records it.  The grammar is reduced first, so an empty language yields a
    grammar with no productions.
    """
    reduced = reduce_grammar(grammar)
    if not reduced.productions:
        nullable = grammar.start in nullable_nonterminals(grammar)
        return reduced, nullable
    no_epsilon, accepts_epsilon = eliminate_epsilon(reduced)
    no_units = eliminate_unit_productions(no_epsilon)
    no_units = reduce_grammar(no_units)

    # Replace terminals in long right-hand sides with dedicated nonterminals.
    terminal_alias: Dict[str, str] = {}
    productions: List[Production] = []
    used_names: Set[str] = set(no_units.nonterminals) | set(no_units.terminals)

    def alias_for(terminal: str) -> str:
        if terminal not in terminal_alias:
            base = f"T_{terminal}"
            name = base
            index = 1
            while name in used_names:
                name = f"{base}_{index}"
                index += 1
            used_names.add(name)
            terminal_alias[terminal] = name
        return terminal_alias[terminal]

    long_productions: List[Production] = []
    for production in no_units.productions:
        rhs = production.rhs
        if len(rhs) == 1:
            productions.append(production)
            continue
        new_rhs = tuple(
            alias_for(symbol) if symbol in no_units.terminals else symbol for symbol in rhs
        )
        long_productions.append(Production(production.lhs, new_rhs))
    for terminal, alias in terminal_alias.items():
        productions.append(Production(alias, (terminal,)))

    # Binarize long right-hand sides.
    counter = [0]

    def fresh(base: str) -> str:
        while True:
            counter[0] += 1
            name = f"{base}_{counter[0]}"
            if name not in used_names:
                used_names.add(name)
                return name

    for production in long_productions:
        rhs = production.rhs
        if len(rhs) == 2:
            productions.append(production)
            continue
        current_lhs = production.lhs
        remaining = list(rhs)
        while len(remaining) > 2:
            first = remaining.pop(0)
            continuation = fresh(f"{production.lhs}_bin")
            productions.append(Production(current_lhs, (first, continuation)))
            current_lhs = continuation
        productions.append(Production(current_lhs, tuple(remaining)))

    nonterminals = {p.lhs for p in productions} | {no_units.start}
    terminals = {
        symbol
        for p in productions
        for symbol in p.rhs
        if symbol not in nonterminals
    }
    cnf = Grammar(nonterminals, terminals, productions, no_units.start)
    return reduce_grammar(cnf), accepts_epsilon
