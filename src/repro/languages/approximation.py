"""Exact and approximate finite automata for context-free grammars.

Two constructions due to Mohri and Nederhof:

* for a **strongly regular** grammar (every mutually recursive nonterminal
  set is uniformly left- or right-linear with respect to itself) an exact
  finite automaton is built directly;
* for an arbitrary grammar, a grammar transformation produces a strongly
  regular grammar whose language is a **superset** of the original one — the
  "regular envelope" ``R(H) ⊇ L(H)`` that Section 7 of the paper suggests
  using when the exact quotient is not available: *"let L(H) be contained in
  a regular language R(H), instead of L(H)/R use R(H)/R"*.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.errors import LanguageAnalysisError
from repro.languages.cfg import Grammar, Production
from repro.languages.cfg_properties import (
    component_linearity,
    is_strongly_regular,
    mutually_recursive_sets,
)
from repro.languages.cfg_transforms import reduce_grammar
from repro.languages.regular.nfa import NFA


# ----------------------------------------------------------------------
# Exact construction for strongly regular grammars
# ----------------------------------------------------------------------
class _FABuilder:
    """Builds an NFA for a strongly regular grammar (Nederhof's ``make_fa``)."""

    def __init__(self, grammar: Grammar):
        self.grammar = grammar
        self.components = mutually_recursive_sets(grammar)
        self.component_of: Dict[str, FrozenSet[str]] = {}
        for component in self.components:
            for member in component:
                self.component_of[member] = component
        self.linearity = {
            component: component_linearity(grammar, component) for component in self.components
        }
        self.transitions: Dict[Tuple[object, Optional[str]], Set[object]] = {}
        self.states: Set[object] = set()
        self._counter = itertools.count()
        self._expansion_depth = 0

    # -- state helpers ---------------------------------------------------
    def new_state(self, label: str = "q") -> object:
        state = (label, next(self._counter))
        self.states.add(state)
        return state

    def add_edge(self, source: object, symbol: Optional[str], target: object) -> None:
        self.transitions.setdefault((source, symbol), set()).add(target)
        self.states.add(source)
        self.states.add(target)

    # -- the recursive construction ---------------------------------------
    def make_fa(self, source: object, sequence: Sequence[str], target: object) -> None:
        grammar = self.grammar
        if len(sequence) == 0:
            self.add_edge(source, None, target)
            return
        if len(sequence) == 1:
            symbol = sequence[0]
            if symbol in grammar.terminals:
                self.add_edge(source, symbol, target)
                return
            self._make_fa_nonterminal(source, symbol, target)
            return
        middle = self.new_state()
        self.make_fa(source, sequence[:1], middle)
        self.make_fa(middle, sequence[1:], target)

    def _make_fa_nonterminal(self, source: object, nonterminal: str, target: object) -> None:
        component = self.component_of[nonterminal]
        linearity = self.linearity[component]
        if not linearity.recursive:
            self._expansion_depth += 1
            if self._expansion_depth > 10_000:
                raise LanguageAnalysisError(
                    "non-recursive expansion exceeded the safety bound"
                )
            for production in self.grammar.productions_for(nonterminal):
                self.make_fa(source, production.rhs, target)
            self._expansion_depth -= 1
            return

        # Recursive component: one sub-state per member for this occurrence.
        member_state = {member: self.new_state(f"{member}") for member in sorted(component)}
        if linearity.right_linear:
            for member in component:
                for production in self.grammar.productions_for(member):
                    rhs = production.rhs
                    member_positions = [i for i, s in enumerate(rhs) if s in component]
                    if member_positions:
                        position = member_positions[-1]
                        prefix, last = rhs[:position], rhs[position]
                        # Strong regularity guarantees the member is the last symbol.
                        self.make_fa(member_state[member], prefix, member_state[last])
                    else:
                        self.make_fa(member_state[member], rhs, target)
            self.add_edge(source, None, member_state[nonterminal])
        else:
            # Left-linear component (the symmetric construction).
            for member in component:
                for production in self.grammar.productions_for(member):
                    rhs = production.rhs
                    member_positions = [i for i, s in enumerate(rhs) if s in component]
                    if member_positions:
                        position = member_positions[0]
                        first, suffix = rhs[position], rhs[position + 1 :]
                        self.make_fa(member_state[first], suffix, member_state[member])
                    else:
                        self.make_fa(source, rhs, member_state[member])
            self.add_edge(member_state[nonterminal], None, target)


def strongly_regular_to_nfa(grammar: Grammar) -> NFA:
    """Exact NFA for a strongly regular grammar.

    Raises :class:`LanguageAnalysisError` if the grammar is not strongly
    regular (use :func:`regular_envelope` in that case).
    """
    reduced = reduce_grammar(grammar)
    if not reduced.productions:
        return NFA({0}, grammar.terminals, {}, 0, set())
    if not is_strongly_regular(reduced):
        raise LanguageAnalysisError("grammar is not strongly regular")
    builder = _FABuilder(reduced)
    start = builder.new_state("start")
    accept = builder.new_state("accept")
    builder.make_fa(start, (reduced.start,), accept)
    return NFA(builder.states, reduced.terminals, builder.transitions, start, {accept})


# ----------------------------------------------------------------------
# Mohri–Nederhof superset transformation
# ----------------------------------------------------------------------
def mohri_nederhof_transform(grammar: Grammar) -> Grammar:
    """Transform an arbitrary grammar into a strongly regular superset grammar.

    Every mutually recursive set that violates the strong-regularity
    condition is rewritten: each member ``A`` gets a companion ``A'``
    (written ``A__cont``), and each production ``A -> α0 B1 α1 ... Bk αk``
    (``Bi`` in the component) is flattened into right-linear pieces::

        A   -> α0 B1
        B1' -> α1 B2 ... Bk' -> αk A'

    with ``A -> α0 A'`` when ``k = 0`` and ``A' -> ε`` closing the loop.
    The resulting language contains the original one.
    """
    reduced = reduce_grammar(grammar)
    if not reduced.productions:
        return reduced
    components = mutually_recursive_sets(reduced)
    bad_components = [
        component
        for component in components
        if not component_linearity(reduced, component).strongly_regular
    ]
    if not bad_components:
        return reduced

    continuation: Dict[str, str] = {}
    new_productions: List[Production] = []
    bad_members: Set[str] = set()
    for component in bad_components:
        for member in component:
            bad_members.add(member)
            continuation[member] = f"{member}__cont"

    for production in reduced.productions:
        lhs = production.lhs
        if lhs not in bad_members:
            new_productions.append(production)
            continue
        component = next(c for c in bad_components if lhs in c)
        rhs = production.rhs
        member_positions = [i for i, symbol in enumerate(rhs) if symbol in component]
        if not member_positions:
            new_productions.append(Production(lhs, rhs + (continuation[lhs],)))
            continue
        # A -> alpha0 B1
        first_position = member_positions[0]
        new_productions.append(
            Production(lhs, rhs[:first_position] + (rhs[first_position],))
        )
        # Bi' -> alpha_i B_{i+1}
        for left_index, right_index in zip(member_positions, member_positions[1:]):
            segment = rhs[left_index + 1 : right_index]
            new_productions.append(
                Production(
                    continuation[rhs[left_index]], segment + (rhs[right_index],)
                )
            )
        # Bk' -> alpha_k A'
        last_position = member_positions[-1]
        new_productions.append(
            Production(
                continuation[rhs[last_position]],
                rhs[last_position + 1 :] + (continuation[lhs],),
            )
        )

    for member in sorted(bad_members):
        new_productions.append(Production(continuation[member], ()))

    nonterminals = set(reduced.nonterminals) | set(continuation.values())
    return Grammar(nonterminals, reduced.terminals, new_productions, reduced.start)


@dataclass(frozen=True)
class RegularEnvelope:
    """A regular superset of a context-free language (exact when possible)."""

    nfa: NFA
    exact: bool
    method: str


def regular_envelope(grammar: Grammar) -> RegularEnvelope:
    """A finite automaton ``A`` with ``L(grammar) ⊆ L(A)``.

    The automaton is exact (``L(A) = L(grammar)``) when the grammar is
    strongly regular; otherwise the Mohri–Nederhof transformation is applied
    first and the automaton recognises a proper superset in general.
    """
    reduced = reduce_grammar(grammar)
    if is_strongly_regular(reduced):
        return RegularEnvelope(strongly_regular_to_nfa(reduced), True, "strongly-regular exact")
    transformed = mohri_nederhof_transform(reduced)
    return RegularEnvelope(
        strongly_regular_to_nfa(transformed), False, "Mohri–Nederhof superset approximation"
    )
