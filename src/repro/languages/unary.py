"""Context-free languages over a one-letter alphabet.

By Parikh's theorem every context-free language over a unary alphabet is
regular: its set of word lengths is ultimately periodic.  Lemma 6.1 of the
paper leans on exactly this structure (chain programs with a single EDB).

An exact symbolic computation of the semilinear set is possible but heavy;
this module recovers the ultimately periodic length set *empirically* —
lengths are enumerated up to a bound, the minimal ``(threshold, period)``
pair consistent with the sample is selected, and the hypothesis is verified
against the grammar on a strictly larger window.  The result object records
the verification bound so callers can treat the certificate honestly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Set, Tuple

from repro.errors import LanguageAnalysisError
from repro.languages.cfg import Grammar
from repro.languages.cfg_analysis import is_finite_language, strings_of_length
from repro.languages.cfg_transforms import reduce_grammar, to_chomsky_normal_form
from repro.languages.regular.dfa import DFA


@dataclass(frozen=True)
class UltimatelyPeriodicSet:
    """An ultimately periodic set of nonnegative integers.

    The set is ``initial ∪ { n >= threshold : (n - threshold) mod period in residues }``.
    A finite set is represented with ``period = 0`` and empty residues.
    """

    initial: FrozenSet[int]
    threshold: int
    period: int
    residues: FrozenSet[int]
    verified_up_to: int
    exact: bool

    def __contains__(self, value: int) -> bool:
        if value in self.initial:
            return True
        if self.period == 0 or value < self.threshold:
            return False
        return (value - self.threshold) % self.period in self.residues

    def is_finite(self) -> bool:
        return self.period == 0 or not self.residues

    def members_up_to(self, bound: int) -> Tuple[int, ...]:
        return tuple(value for value in range(bound + 1) if value in self)


def _generated_lengths(grammar: Grammar, bound: int) -> Set[int]:
    """Lengths of generated words up to *bound*, via per-length counting."""
    lengths: Set[int] = set()
    for length in range(bound + 1):
        if strings_of_length(grammar, length):
            lengths.add(length)
    return lengths


def unary_length_set(
    grammar: Grammar, sample_bound: int = 40, verify_bound: Optional[int] = None
) -> UltimatelyPeriodicSet:
    """Recover the ultimately periodic length set of a unary-alphabet CFL.

    Parameters
    ----------
    grammar:
        A grammar whose reduced form uses at most one terminal symbol.
    sample_bound:
        Lengths up to this bound are used to guess the periodic structure.
    verify_bound:
        The guess is re-checked on lengths up to this bound (default
        ``2 * sample_bound``); the result records the bound and whether the
        certificate is exact (finite languages) or empirical.
    """
    reduced = reduce_grammar(grammar)
    used_terminals = {
        symbol
        for production in reduced.productions
        for symbol in production.rhs
        if symbol in reduced.terminals
    }
    if len(used_terminals) > 1:
        raise LanguageAnalysisError("grammar is not over a unary alphabet")
    verify_bound = verify_bound if verify_bound is not None else 2 * sample_bound

    if is_finite_language(grammar):
        cnf, accepts_epsilon = to_chomsky_normal_form(grammar)
        max_length = 2 ** max(0, len(cnf.nonterminals) - 1)
        lengths = _generated_lengths(grammar, max_length)
        if accepts_epsilon:
            lengths.add(0)
        return UltimatelyPeriodicSet(
            frozenset(lengths), 0, 0, frozenset(), max_length, True
        )

    sample = _generated_lengths(grammar, sample_bound)
    verification = _generated_lengths(grammar, verify_bound)

    best: Optional[Tuple[int, int, FrozenSet[int], FrozenSet[int]]] = None
    for period in range(1, sample_bound // 2 + 1):
        for threshold in range(sample_bound // 2 + 1):
            residues = frozenset(
                (value - threshold) % period for value in sample if value >= threshold
            )
            initial = frozenset(value for value in sample if value < threshold)
            candidate = UltimatelyPeriodicSet(
                initial, threshold, period, residues, verify_bound, False
            )
            if all((value in candidate) == (value in verification) for value in range(verify_bound + 1)):
                best = (threshold, period, residues, initial)
                break
        if best is not None:
            break
    if best is None:
        raise LanguageAnalysisError(
            "could not fit an ultimately periodic set within the sampling bound; "
            "increase sample_bound"
        )
    threshold, period, residues, initial = best
    return UltimatelyPeriodicSet(initial, threshold, period, residues, verify_bound, False)


def length_set_to_dfa(lengths: UltimatelyPeriodicSet, symbol: str) -> DFA:
    """A DFA over ``{symbol}`` accepting words whose length lies in the set."""
    if lengths.period == 0 or not lengths.residues:
        maximum = max(lengths.initial) if lengths.initial else 0
        states = list(range(maximum + 2))
        transitions = {(i, symbol): i + 1 for i in range(maximum + 1)}
        accepting = {value for value in lengths.initial}
        return DFA(states, {symbol}, transitions, 0, accepting)

    prefix_length = lengths.threshold
    states = [("prefix", i) for i in range(prefix_length)] + [
        ("cycle", r) for r in range(lengths.period)
    ]
    transitions = {}
    for i in range(prefix_length):
        target = ("prefix", i + 1) if i + 1 < prefix_length else ("cycle", 0)
        transitions[(("prefix", i), symbol)] = target
    for r in range(lengths.period):
        transitions[(("cycle", r), symbol)] = ("cycle", (r + 1) % lengths.period)
    accepting = set()
    for i in range(prefix_length):
        if i in lengths.initial or i in lengths:
            accepting.add(("prefix", i))
    for r in range(lengths.period):
        if r in lengths.residues:
            accepting.add(("cycle", r))
    start = ("prefix", 0) if prefix_length else ("cycle", 0)
    # When the threshold is zero the prefix part is empty and lengths.initial too.
    return DFA(states if states else [("cycle", 0)], {symbol}, transitions, start, accepting)
