"""Structural properties of context-free grammars bearing on regularity.

CFL regularity is undecidable (this is what makes Theorem 3.3(1) a lower
bound), but several *decidable sufficient conditions* are classical:

* a left-linear or right-linear grammar generates a regular language;
* a **non-self-embedding** grammar generates a regular language (Chomsky);
* a **strongly regular** grammar in the sense of Mohri and Nederhof (every
  mutually recursive nonterminal set is uniformly left- or right-linear with
  respect to itself) generates a regular language, and an equivalent finite
  automaton can be constructed directly;
* every context-free language over a **one-letter alphabet** is regular
  (Parikh's theorem).

These checks power the `PROPAGATABLE` side of the selection-propagation
decision procedure; when none applies the procedure reports `UNKNOWN`,
which is exactly the undecidable frontier the paper identifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.languages.cfg import Grammar, Production
from repro.languages.cfg_transforms import reduce_grammar


# ----------------------------------------------------------------------
# Linearity
# ----------------------------------------------------------------------
def is_left_linear(grammar: Grammar) -> bool:
    """Every production has at most one nonterminal, and it is the first symbol."""
    for production in grammar.productions:
        nonterminal_positions = [
            index for index, symbol in enumerate(production.rhs) if symbol in grammar.nonterminals
        ]
        if len(nonterminal_positions) > 1:
            return False
        if nonterminal_positions and nonterminal_positions[0] != 0:
            return False
    return True


def is_right_linear(grammar: Grammar) -> bool:
    """Every production has at most one nonterminal, and it is the last symbol."""
    for production in grammar.productions:
        nonterminal_positions = [
            index for index, symbol in enumerate(production.rhs) if symbol in grammar.nonterminals
        ]
        if len(nonterminal_positions) > 1:
            return False
        if nonterminal_positions and nonterminal_positions[0] != len(production.rhs) - 1:
            return False
    return True


def is_linear(grammar: Grammar) -> bool:
    """Every production has at most one nonterminal (anywhere in the right-hand side)."""
    for production in grammar.productions:
        count = sum(1 for symbol in production.rhs if symbol in grammar.nonterminals)
        if count > 1:
            return False
    return True


# ----------------------------------------------------------------------
# Self-embedding
# ----------------------------------------------------------------------
def is_self_embedding(grammar: Grammar) -> bool:
    """True if some useful nonterminal ``A`` satisfies ``A ⇒+ αAβ`` with ``α, β ≠ ε``.

    By Chomsky's theorem a grammar that is *not* self-embedding generates a
    regular language.  The check computes, for each ordered pair of
    nonterminals ``(A, B)``, whether ``A ⇒+ αBβ`` together with flags telling
    whether something can appear to the left (``α`` non-empty) and to the
    right (``β`` non-empty) of ``B``; the flags are propagated transitively.
    """
    reduced = reduce_grammar(grammar)
    if not reduced.productions:
        return False

    # relation[(A, B)] = set of (left_nonempty, right_nonempty) flag pairs
    relation: Dict[Tuple[str, str], Set[Tuple[bool, bool]]] = {}

    def add(a: str, b: str, flags: Tuple[bool, bool]) -> bool:
        existing = relation.setdefault((a, b), set())
        if flags in existing:
            return False
        existing.add(flags)
        return True

    # One-step relation from productions.
    for production in reduced.productions:
        rhs = production.rhs
        for index, symbol in enumerate(rhs):
            if symbol in reduced.nonterminals:
                add(production.lhs, symbol, (index > 0, index < len(rhs) - 1))

    changed = True
    while changed:
        changed = False
        snapshot = {key: frozenset(value) for key, value in relation.items()}
        for (a, b), flag_set in snapshot.items():
            for (b2, c), flag_set2 in snapshot.items():
                if b2 != b:
                    continue
                for left1, right1 in flag_set:
                    for left2, right2 in flag_set2:
                        if add(a, c, (left1 or left2, right1 or right2)):
                            changed = True

    return any((True, True) in flags for (a, b), flags in relation.items() if a == b)


# ----------------------------------------------------------------------
# Strong regularity (Mohri–Nederhof)
# ----------------------------------------------------------------------
def mutually_recursive_sets(grammar: Grammar) -> List[FrozenSet[str]]:
    """Strongly connected components of the nonterminal "uses" graph."""
    adjacency: Dict[str, Set[str]] = {n: set() for n in grammar.nonterminals}
    for production in grammar.productions:
        for symbol in production.rhs:
            if symbol in grammar.nonterminals:
                adjacency[production.lhs].add(symbol)

    index_counter = [0]
    stack: List[str] = []
    lowlink: Dict[str, int] = {}
    index: Dict[str, int] = {}
    on_stack: Set[str] = set()
    components: List[FrozenSet[str]] = []

    def strong_connect(node: str) -> None:
        index[node] = index_counter[0]
        lowlink[node] = index_counter[0]
        index_counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        for successor in adjacency.get(node, ()):  # pragma: no branch
            if successor not in index:
                strong_connect(successor)
                lowlink[node] = min(lowlink[node], lowlink[successor])
            elif successor in on_stack:
                lowlink[node] = min(lowlink[node], index[successor])
        if lowlink[node] == index[node]:
            component = set()
            while True:
                member = stack.pop()
                on_stack.discard(member)
                component.add(member)
                if member == node:
                    break
            components.append(frozenset(component))

    for node in sorted(grammar.nonterminals):
        if node not in index:
            strong_connect(node)
    return components


def _is_recursive_component(grammar: Grammar, component: FrozenSet[str]) -> bool:
    if len(component) > 1:
        return True
    (node,) = component
    for production in grammar.productions_for(node):
        if node in production.rhs:
            return True
    return False


@dataclass(frozen=True)
class ComponentLinearity:
    """How one mutually recursive nonterminal set uses its own members."""

    component: FrozenSet[str]
    recursive: bool
    right_linear: bool
    left_linear: bool

    @property
    def strongly_regular(self) -> bool:
        return (not self.recursive) or self.right_linear or self.left_linear


def component_linearity(grammar: Grammar, component: FrozenSet[str]) -> ComponentLinearity:
    """Classify how productions of a component place component nonterminals."""
    recursive = _is_recursive_component(grammar, component)
    right_linear = True
    left_linear = True
    for production in grammar.productions:
        if production.lhs not in component:
            continue
        member_positions = [
            index for index, symbol in enumerate(production.rhs) if symbol in component
        ]
        if not member_positions:
            continue
        if len(member_positions) > 1:
            right_linear = False
            left_linear = False
            continue
        position = member_positions[0]
        if position != len(production.rhs) - 1:
            right_linear = False
        if position != 0:
            left_linear = False
    return ComponentLinearity(component, recursive, right_linear, left_linear)


def is_strongly_regular(grammar: Grammar) -> bool:
    """Mohri–Nederhof condition: each recursive component is uniformly left- or right-linear.

    Strongly regular grammars generate regular languages and admit an exact
    finite-automaton construction (see :mod:`repro.languages.approximation`).
    """
    reduced = reduce_grammar(grammar)
    if not reduced.productions:
        return True
    return all(
        component_linearity(reduced, component).strongly_regular
        for component in mutually_recursive_sets(reduced)
    )


def is_unary_alphabet(grammar: Grammar) -> bool:
    """True if the (reduced) grammar uses at most one terminal symbol.

    By Parikh's theorem every context-free language over a one-letter
    alphabet is regular; this is the argument the paper's Section 6 uses for
    chain programs with a single EDB predicate.
    """
    reduced = reduce_grammar(grammar)
    used_terminals = {
        symbol
        for production in reduced.productions
        for symbol in production.rhs
        if symbol in reduced.terminals
    }
    return len(used_terminals) <= 1


@dataclass(frozen=True)
class RegularityEvidence:
    """A decidable certificate that a grammar's language is regular (or none)."""

    regular: Optional[bool]
    reason: str

    @classmethod
    def unknown(cls, reason: str = "no decidable criterion applied") -> "RegularityEvidence":
        return cls(None, reason)


def regularity_evidence(grammar: Grammar) -> RegularityEvidence:
    """Apply the decidable sufficient conditions for regularity in order.

    Returns evidence with ``regular=True`` and the criterion used, or
    ``regular=None`` when no criterion applies (the undecidable frontier:
    the answer may be either way).  The function never returns
    ``regular=False`` — non-regularity cannot be certified structurally.
    """
    from repro.languages.cfg_analysis import is_finite_language

    if is_finite_language(grammar):
        return RegularityEvidence(True, "finite language")
    if is_left_linear(grammar):
        return RegularityEvidence(True, "left-linear grammar")
    if is_right_linear(grammar):
        return RegularityEvidence(True, "right-linear grammar")
    if is_strongly_regular(grammar):
        return RegularityEvidence(True, "strongly regular grammar (Mohri–Nederhof)")
    if not is_self_embedding(grammar):
        return RegularityEvidence(True, "non-self-embedding grammar (Chomsky)")
    if is_unary_alphabet(grammar):
        return RegularityEvidence(True, "unary terminal alphabet (Parikh)")
    return RegularityEvidence.unknown(
        "grammar is self-embedding and not strongly regular; regularity is undecidable in general"
    )
