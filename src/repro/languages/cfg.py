"""Context-free grammars.

Section 3 of the paper associates a context-free grammar ``G(H)`` with every
chain program ``H``: IDB predicates become nonterminals, EDB predicates
become terminals, the goal predicate becomes the start symbol.  This module
provides the grammar data structure that the rest of the library analyses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ValidationError
from repro.languages.alphabet import Word


@dataclass(frozen=True)
class Production:
    """A production ``lhs -> rhs`` where ``rhs`` is a (possibly empty) symbol sequence."""

    lhs: str
    rhs: Tuple[str, ...]

    def __init__(self, lhs: str, rhs: Sequence[str]):
        object.__setattr__(self, "lhs", lhs)
        object.__setattr__(self, "rhs", tuple(rhs))

    def is_epsilon(self) -> bool:
        """True if the right-hand side is empty."""
        return not self.rhs

    def __str__(self) -> str:
        rhs = " ".join(self.rhs) if self.rhs else "ε"
        return f"{self.lhs} -> {rhs}"


@dataclass(frozen=True)
class Grammar:
    """An immutable context-free grammar."""

    nonterminals: FrozenSet[str]
    terminals: FrozenSet[str]
    productions: Tuple[Production, ...]
    start: str

    def __init__(
        self,
        nonterminals: Iterable[str],
        terminals: Iterable[str],
        productions: Iterable[Production],
        start: str,
    ):
        object.__setattr__(self, "nonterminals", frozenset(nonterminals))
        object.__setattr__(self, "terminals", frozenset(terminals))
        object.__setattr__(self, "productions", tuple(productions))
        object.__setattr__(self, "start", start)
        self._validate()

    def _validate(self) -> None:
        if self.nonterminals & self.terminals:
            overlap = sorted(self.nonterminals & self.terminals)
            raise ValidationError(f"symbols used as both terminal and nonterminal: {overlap}")
        if self.start not in self.nonterminals:
            raise ValidationError(f"start symbol {self.start!r} is not a nonterminal")
        for production in self.productions:
            if production.lhs not in self.nonterminals:
                raise ValidationError(f"production head {production.lhs!r} is not a nonterminal")
            for symbol in production.rhs:
                if symbol not in self.nonterminals and symbol not in self.terminals:
                    raise ValidationError(
                        f"unknown symbol {symbol!r} in production {production}"
                    )

    # ------------------------------------------------------------------
    @classmethod
    def from_productions(
        cls,
        productions: Iterable[Tuple[str, Sequence[str]]],
        start: str,
        terminals: Optional[Iterable[str]] = None,
    ) -> "Grammar":
        """Build a grammar from ``(lhs, rhs)`` pairs.

        If *terminals* is not given, every right-hand-side symbol that never
        occurs as a left-hand side is treated as a terminal.
        """
        production_objects = [Production(lhs, rhs) for lhs, rhs in productions]
        nonterminals = {production.lhs for production in production_objects}
        nonterminals.add(start)
        if terminals is None:
            terminal_set = {
                symbol
                for production in production_objects
                for symbol in production.rhs
                if symbol not in nonterminals
            }
        else:
            terminal_set = set(terminals)
        return cls(nonterminals, terminal_set, production_objects, start)

    # ------------------------------------------------------------------
    def productions_for(self, nonterminal: str) -> Tuple[Production, ...]:
        """Productions whose left-hand side is *nonterminal*."""
        return tuple(p for p in self.productions if p.lhs == nonterminal)

    def is_terminal(self, symbol: str) -> bool:
        return symbol in self.terminals

    def is_nonterminal(self, symbol: str) -> bool:
        return symbol in self.nonterminals

    def has_epsilon_productions(self) -> bool:
        """True if some production has an empty right-hand side."""
        return any(p.is_epsilon() for p in self.productions)

    def with_start(self, start: str) -> "Grammar":
        """Return a copy with a different start symbol (must already be a nonterminal)."""
        return Grammar(self.nonterminals, self.terminals, self.productions, start)

    def with_productions(self, productions: Iterable[Production]) -> "Grammar":
        """Return a grammar with the given production set (symbols recomputed)."""
        production_list = list(productions)
        nonterminals = {p.lhs for p in production_list} | {self.start}
        terminals = {
            symbol
            for production in production_list
            for symbol in production.rhs
            if symbol not in nonterminals
        }
        return Grammar(nonterminals, terminals, production_list, self.start)

    def fresh_nonterminal(self, base: str) -> str:
        """A nonterminal name based on *base* not already used by the grammar."""
        if base not in self.nonterminals and base not in self.terminals:
            return base
        index = 1
        while f"{base}_{index}" in self.nonterminals or f"{base}_{index}" in self.terminals:
            index += 1
        return f"{base}_{index}"

    def production_map(self) -> Dict[str, List[Tuple[str, ...]]]:
        """Mapping from nonterminal to the list of its right-hand sides."""
        mapping: Dict[str, List[Tuple[str, ...]]] = {n: [] for n in self.nonterminals}
        for production in self.productions:
            mapping[production.lhs].append(production.rhs)
        return mapping

    def __str__(self) -> str:
        lines = [f"start: {self.start}"]
        lines.extend(str(p) for p in self.productions)
        return "\n".join(lines)


def parse_grammar(text: str, start: Optional[str] = None) -> Grammar:
    """Parse a grammar from text.

    Each non-empty, non-comment line reads ``A -> X Y Z`` or ``A -> X | Y Z``.
    ``ε`` (or ``epsilon``) denotes the empty right-hand side.  The start
    symbol defaults to the left-hand side of the first production.
    """
    productions: List[Tuple[str, Tuple[str, ...]]] = []
    first_lhs: Optional[str] = None
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        if "->" not in line:
            raise ValidationError(f"cannot parse grammar line: {raw_line!r}")
        lhs, _, rhs_text = line.partition("->")
        lhs = lhs.strip()
        if first_lhs is None:
            first_lhs = lhs
        for alternative in rhs_text.split("|"):
            symbols = tuple(
                symbol
                for symbol in alternative.split()
                if symbol not in ("ε", "epsilon", "eps")
            )
            productions.append((lhs, symbols))
    if first_lhs is None:
        raise ValidationError("grammar text contains no productions")
    return Grammar.from_productions(productions, start or first_lhs)


def format_grammar(grammar: Grammar) -> str:
    """Render a grammar grouped by nonterminal, start symbol first."""
    mapping = grammar.production_map()
    order = [grammar.start] + sorted(n for n in mapping if n != grammar.start)
    lines = []
    for nonterminal in order:
        alternatives = mapping.get(nonterminal, [])
        if not alternatives:
            continue
        rendered = " | ".join(" ".join(rhs) if rhs else "ε" for rhs in alternatives)
        lines.append(f"{nonterminal} -> {rendered}")
    return "\n".join(lines)


def derives_word(grammar: Grammar, sentence: Word) -> bool:
    """Convenience wrapper around CYK membership (see :mod:`cfg_analysis`)."""
    from repro.languages.cfg_analysis import cfg_membership

    return cfg_membership(grammar, sentence)
