"""Sampling and enumeration helpers for context-free languages."""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.errors import LanguageAnalysisError
from repro.languages.alphabet import Word
from repro.languages.cfg import Grammar
from repro.languages.cfg_analysis import shortest_lengths


def random_sentence(
    grammar: Grammar,
    rng: Optional[random.Random] = None,
    max_length: int = 50,
    bias_short: float = 0.75,
) -> Word:
    """Sample one word of the language by a guided random derivation.

    The sampler expands the leftmost nonterminal, preferring productions
    whose shortest completion keeps the sentential form within *max_length*;
    ``bias_short`` is the probability of picking among the shortest-yield
    productions (a crude but effective way to terminate quickly).

    Raises :class:`LanguageAnalysisError` when the grammar generates nothing.
    """
    rng = rng if rng is not None else random.Random()
    minimal = shortest_lengths(grammar)
    if grammar.start not in minimal:
        raise LanguageAnalysisError("the grammar generates no word")

    def minimal_yield(symbols: Sequence[str]) -> int:
        total = 0
        for symbol in symbols:
            if symbol in grammar.terminals:
                total += 1
            else:
                total += minimal.get(symbol, max_length + 1)
        return total

    sentential: List[str] = [grammar.start]
    guard = 0
    while any(symbol in grammar.nonterminals for symbol in sentential):
        guard += 1
        if guard > 10_000:
            raise LanguageAnalysisError("random derivation did not terminate")
        position = next(
            index for index, symbol in enumerate(sentential) if symbol in grammar.nonterminals
        )
        nonterminal = sentential[position]
        candidates = [
            production
            for production in grammar.productions_for(nonterminal)
            if nonterminal in minimal
        ]
        if not candidates:
            raise LanguageAnalysisError(f"nonterminal {nonterminal} generates no word")
        rest_cost = minimal_yield(sentential[:position] + sentential[position + 1 :])
        affordable = [
            production
            for production in candidates
            if rest_cost + minimal_yield(production.rhs) <= max_length
        ]
        pool = affordable if affordable else candidates
        if rng.random() < bias_short:
            best = min(minimal_yield(production.rhs) for production in pool)
            pool = [
                production for production in pool if minimal_yield(production.rhs) == best
            ]
        production = rng.choice(pool)
        sentential[position : position + 1] = list(production.rhs)
    return tuple(sentential)


def random_sentences(
    grammar: Grammar,
    count: int,
    seed: Optional[int] = None,
    max_length: int = 50,
) -> List[Word]:
    """Sample *count* words (with repetition possible)."""
    rng = random.Random(seed)
    return [random_sentence(grammar, rng, max_length) for _ in range(count)]


def sentential_forms(grammar: Grammar, max_steps: int, max_count: int = 500) -> List[Word]:
    """All sentential forms reachable from the start symbol in at most *max_steps* steps.

    Sentential forms (strings over terminals *and* nonterminals derivable
    from the start symbol) are the objects whose equality problem Blattner
    proved undecidable — the reduction behind Proposition 8.1's
    undecidability of uniform chain-program containment.
    """
    current = {(grammar.start,)}
    seen = set(current)
    for _ in range(max_steps):
        next_forms = set()
        for form in current:
            for index, symbol in enumerate(form):
                if symbol not in grammar.nonterminals:
                    continue
                for production in grammar.productions_for(symbol):
                    new_form = form[:index] + production.rhs + form[index + 1 :]
                    if new_form not in seen:
                        next_forms.add(new_form)
        seen.update(next_forms)
        current = next_forms
        if len(seen) > max_count:
            break
        if not current:
            break
    return sorted(seen, key=lambda form: (len(form), form))
