"""Intersection of a context-free language with a regular language (Bar-Hillel).

The intersection of a CFL with a regular language is context free, and the
construction is effective.  Two consequences used by the reproduction:

* ``L(G) ⊆ L(A)`` is decidable whenever ``A`` is a finite automaton
  (``L(G) ∩ complement(L(A)) = ∅`` and CFL emptiness is decidable) — this is
  the decidable fragment of chain-program containment exploited for
  Proposition 8.1 and by the equivalence checker;
* the exact part of a language captured by a regular envelope can be
  inspected (e.g. which short strings of the envelope are genuine).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.languages.cfg import Grammar, Production
from repro.languages.cfg_analysis import is_empty_language, shortest_word
from repro.languages.cfg_transforms import reduce_grammar, to_chomsky_normal_form
from repro.languages.regular.dfa import DFA
from repro.languages.regular.operations import dfa_complement
from repro.languages.alphabet import Word


def intersect_grammar_dfa(grammar: Grammar, dfa: DFA) -> Grammar:
    """The Bar-Hillel "triple" construction for ``L(grammar) ∩ L(dfa)``.

    The grammar is first brought to Chomsky normal form (so right-hand sides
    have length at most two and the construction stays polynomial in the
    number of automaton states); the empty word is handled separately.
    """
    cnf, accepts_epsilon = to_chomsky_normal_form(grammar)
    total = dfa.complete(set(cnf.terminals) | set(dfa.alphabet))
    states = sorted(total.states, key=repr)

    def triple(state_in: object, symbol: str, state_out: object) -> str:
        return f"[{state_in!r},{symbol},{state_out!r}]"

    productions: List[Production] = []
    start = "S_intersect"

    for accept_state in total.accepting:
        productions.append(
            Production(start, (triple(total.start, cnf.start, accept_state),))
        )
    if accepts_epsilon and total.start in total.accepting:
        productions.append(Production(start, ()))

    for production in cnf.productions:
        lhs = production.lhs
        rhs = production.rhs
        if len(rhs) == 1 and rhs[0] in cnf.terminals:
            symbol = rhs[0]
            for state in states:
                target = total.delta(state, symbol)
                if target is not None:
                    productions.append(Production(triple(state, lhs, target), (symbol,)))
        elif len(rhs) == 2:
            left_symbol, right_symbol = rhs
            for state_in in states:
                for middle in states:
                    for state_out in states:
                        productions.append(
                            Production(
                                triple(state_in, lhs, state_out),
                                (
                                    triple(state_in, left_symbol, middle),
                                    triple(middle, right_symbol, state_out),
                                ),
                            )
                        )
    nonterminals = {p.lhs for p in productions} | {start}
    for production in productions:
        for symbol in production.rhs:
            if symbol.startswith("[") and symbol.endswith("]"):
                nonterminals.add(symbol)
    terminals = set(cnf.terminals)
    result = Grammar(nonterminals, terminals, productions, start)
    return reduce_grammar(result)


def cfl_intersects_regular(grammar: Grammar, dfa: DFA) -> bool:
    """Is ``L(grammar) ∩ L(dfa)`` non-empty?"""
    return not is_empty_language(intersect_grammar_dfa(grammar, dfa))


def cfl_subset_of_regular(grammar: Grammar, dfa: DFA) -> Tuple[bool, Optional[Word]]:
    """Decide ``L(grammar) ⊆ L(dfa)``.

    Returns ``(True, None)`` or ``(False, witness)`` where the witness is a
    shortest word of ``L(grammar) - L(dfa)``.
    """
    alphabet = set(grammar.terminals) | set(dfa.alphabet)
    complement = dfa_complement(dfa, alphabet)
    difference = intersect_grammar_dfa(grammar, complement)
    if is_empty_language(difference):
        return True, None
    return False, shortest_word(difference)
