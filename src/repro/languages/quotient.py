"""Language quotients in the sense of Section 7 of the paper.

The quotient of a context-free language ``L`` by a regular language ``R`` is

    ``L / R = { x | there is a string y in R such that xy is in L }``.

Computing the quotient of a CFL exactly yields another CFL; the paper's
observation is that *it often happens that the quotients L(H)/R are
regular*, and that when they are (or when a regular envelope is used
instead) they correspond to monadic "magic" programs.  This module offers:

* the exact regular/regular quotient (always regular);
* the envelope quotient ``R(H)/R`` recommended by the paper when ``L(H)``
  itself has no regular certificate;
* a bounded membership oracle for the exact CFL/regular quotient, used by
  tests to confirm that the regular quotients computed here agree with the
  definition on all short strings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.languages.alphabet import Word
from repro.languages.approximation import RegularEnvelope, regular_envelope
from repro.languages.cfg import Grammar
from repro.languages.cfg_analysis import cfg_membership, strings_of_length
from repro.languages.regular.dfa import DFA
from repro.languages.regular.nfa import NFA
from repro.languages.regular.operations import right_quotient
from repro.languages.regular.properties import enumerate_words


def regular_quotient(language: DFA, divisor: NFA) -> DFA:
    """Exact right quotient of a regular language by a regular language."""
    return right_quotient(language, divisor)


@dataclass(frozen=True)
class EnvelopeQuotient:
    """The quotient of a grammar's regular envelope by a regular divisor."""

    quotient: DFA
    envelope: RegularEnvelope

    @property
    def exact(self) -> bool:
        """True when the envelope was exact, so the quotient equals ``L(H)/R``."""
        return self.envelope.exact


def envelope_quotient(grammar: Grammar, divisor: NFA) -> EnvelopeQuotient:
    """Quotient ``R(H)/R`` where ``R(H)`` is the grammar's regular envelope.

    When the grammar is strongly regular the envelope is exact and so is the
    quotient; otherwise the result is a superset of ``L(H)/R``, which is the
    sound direction for magic-set pruning (a larger magic set never loses
    answers, it merely prunes less).
    """
    envelope = regular_envelope(grammar)
    quotient = right_quotient(envelope.nfa.to_dfa(), divisor)
    return EnvelopeQuotient(quotient, envelope)


def cfl_quotient_member(
    grammar: Grammar, divisor: NFA, prefix: Word, max_suffix_length: int = 12
) -> Optional[bool]:
    """Bounded membership test for the exact quotient ``L(grammar)/L(divisor)``.

    Returns ``True`` if some witness suffix of length at most
    *max_suffix_length* exists, ``False`` if provably none exists within the
    bound **and** the divisor language is finite with all words within the
    bound, and ``None`` when the bounded search is inconclusive.
    """
    from repro.languages.regular.properties import is_finite_language

    witnesses = enumerate_words(divisor, max_suffix_length)
    for suffix in witnesses:
        if cfg_membership(grammar, tuple(prefix) + tuple(suffix)):
            return True
    if is_finite_language(divisor):
        longest = max((len(word) for word in witnesses), default=0)
        if longest <= max_suffix_length:
            return False
    return None


def quotient_sample(
    grammar: Grammar, divisor: NFA, max_prefix_length: int, max_suffix_length: int = 12
) -> Iterable[Word]:
    """Prefixes (up to a length bound) that belong to the exact quotient.

    This enumerates candidate prefixes from the grammar's own sentential
    prefixes (every quotient member is a prefix of a word of ``L``) and keeps
    those with a bounded witness; used by tests and the Section 7 example.
    """
    members = []
    seen = set()
    for length in range(max_prefix_length + 1):
        for sentence in strings_of_length(grammar, length + max_suffix_length):
            for cut in range(min(length, len(sentence)) + 1):
                prefix = sentence[:cut]
                if len(prefix) > max_prefix_length or prefix in seen:
                    continue
                seen.add(prefix)
                if cfl_quotient_member(grammar, divisor, prefix, max_suffix_length):
                    members.append(prefix)
    return sorted(set(members))
