"""Chain Datalog programs and their goal forms (Section 2.1 of the paper).

A *chain rule* has the shape::

    r(X, Y) :- r1(X, X1), r2(X1, X2), ..., rn(X_{n-1}, Y)

with all predicates binary, the chain variables distinct, and ``n >= 1``.
A *chain program* consists solely of chain rules; its goal takes one of six
forms: ``p(X, Y)``, ``p(X, X)``, ``p(c, Y)``, ``p(X, c)``, ``p(c, c1)``,
``p(c, c)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Tuple

from repro.datalog.atoms import Atom
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Variable
from repro.errors import NotAChainProgramError, ValidationError


class GoalForm(Enum):
    """The six possible goal forms of a chain program (Section 2.1)."""

    FREE = "p(X, Y)"
    EQUAL = "p(X, X)"
    CONSTANT_FIRST = "p(c, Y)"
    CONSTANT_SECOND = "p(X, c)"
    CONSTANT_BOTH = "p(c, c1)"
    CONSTANT_SAME = "p(c, c)"

    @property
    def has_constant(self) -> bool:
        """Goal forms whose selection involves at least one constant."""
        return self in (
            GoalForm.CONSTANT_FIRST,
            GoalForm.CONSTANT_SECOND,
            GoalForm.CONSTANT_BOTH,
            GoalForm.CONSTANT_SAME,
        )


def classify_goal(goal: Atom) -> GoalForm:
    """Classify a binary goal atom into one of the six forms."""
    if goal.arity != 2:
        raise ValidationError(f"chain-program goals are binary, got {goal}")
    first, second = goal.terms
    if isinstance(first, Variable) and isinstance(second, Variable):
        return GoalForm.EQUAL if first == second else GoalForm.FREE
    if isinstance(first, Constant) and isinstance(second, Variable):
        return GoalForm.CONSTANT_FIRST
    if isinstance(first, Variable) and isinstance(second, Constant):
        return GoalForm.CONSTANT_SECOND
    assert isinstance(first, Constant) and isinstance(second, Constant)
    return GoalForm.CONSTANT_SAME if first == second else GoalForm.CONSTANT_BOTH


def is_chain_rule(rule: Rule, idb_hint: Optional[frozenset] = None) -> bool:
    """Check the chain-rule shape (head and body form one variable chain)."""
    head = rule.head
    if head.arity != 2:
        return False
    if not all(isinstance(term, Variable) for term in head.terms):
        return False
    if not rule.body:
        return False
    start, end = head.terms
    if start == end:
        return False
    chain_vars = [start]
    for atom in rule.body:
        if atom.arity != 2:
            return False
        if not all(isinstance(term, Variable) for term in atom.terms):
            return False
        if atom.terms[0] != chain_vars[-1]:
            return False
        chain_vars.append(atom.terms[1])
    if chain_vars[-1] != end:
        return False
    return len(set(chain_vars)) == len(chain_vars)


@dataclass(frozen=True)
class ChainProgram:
    """A validated chain program.

    Wraps a :class:`~repro.datalog.program.Program` whose rules are all chain
    rules and whose goal (if any) is binary.  The wrapped program is exposed
    via :attr:`program`; the grammar/language view lives in
    :mod:`repro.core.grammar_map`.
    """

    program: Program

    def __init__(self, program: Program):
        for rule in program.rules:
            if not is_chain_rule(rule):
                raise NotAChainProgramError(f"rule is not a chain rule: {rule}")
        if program.goal is not None:
            classify_goal(program.goal)
        arities = program.predicate_arities()
        for predicate, arity in arities.items():
            if arity != 2:
                raise NotAChainProgramError(
                    f"chain programs use only binary predicates; {predicate} has arity {arity}"
                )
        program.validate()
        object.__setattr__(self, "program", program)

    # ------------------------------------------------------------------
    @classmethod
    def from_text(cls, text: str) -> "ChainProgram":
        """Parse a chain program from the Prolog-like syntax."""
        from repro.datalog.parser import parse_program

        return cls(parse_program(text))

    @classmethod
    def coerce(cls, program) -> "ChainProgram":
        """Return *program* as a :class:`ChainProgram`, wrapping a plain :class:`Program`."""
        return program if isinstance(program, cls) else cls(program)

    # ------------------------------------------------------------------
    @property
    def goal(self) -> Optional[Atom]:
        """The selection goal ``p(u, v)`` whose propagation Theorem 3.3 decides."""
        return self.program.goal

    @property
    def rules(self) -> Tuple[Rule, ...]:
        """The underlying program's chain rules (Section 2.1)."""
        return self.program.rules

    def goal_form(self) -> GoalForm:
        """The goal's form; raises if the program has no goal."""
        if self.program.goal is None:
            raise ValidationError("chain program has no goal")
        return classify_goal(self.program.goal)

    def goal_predicate(self) -> str:
        """The goal's predicate symbol; raises if the program has no goal."""
        if self.program.goal is None:
            raise ValidationError("chain program has no goal")
        return self.program.goal.predicate

    def idb_predicates(self) -> frozenset:
        """Derived predicates — the nonterminals of the grammar ``G(H)`` (Section 3)."""
        return self.program.idb_predicates()

    def edb_predicates(self) -> frozenset:
        """Database predicates — the terminal alphabet of ``G(H)`` (Section 3)."""
        return self.program.edb_predicates()

    def with_goal(self, goal: Atom) -> "ChainProgram":
        """Return the same rules with a different goal."""
        return ChainProgram(self.program.with_goal(goal))

    def goal_constants(self) -> Tuple[Constant, ...]:
        """Constants appearing in the goal (empty for the variable-only forms)."""
        if self.program.goal is None:
            return ()
        return tuple(t for t in self.program.goal.terms if isinstance(t, Constant))

    def __str__(self) -> str:
        return str(self.program)


def chain_rule(head_predicate: str, body_predicates: Tuple[str, ...]) -> Rule:
    """Build a chain rule from predicate names (variables are generated)."""
    if not body_predicates:
        raise ValidationError("chain rules have non-empty bodies")
    variables = [Variable("X")] + [
        Variable(f"X{i}") for i in range(1, len(body_predicates))
    ] + [Variable("Y")]
    body = tuple(
        Atom(predicate, (variables[i], variables[i + 1]))
        for i, predicate in enumerate(body_predicates)
    )
    head = Atom(head_predicate, (variables[0], variables[-1]))
    return Rule(head, body)


def chain_program_from_productions(
    productions: Tuple[Tuple[str, Tuple[str, ...]], ...],
    goal: Atom,
) -> ChainProgram:
    """Build a chain program from grammar-like ``(head, body-predicates)`` pairs."""
    rules = tuple(chain_rule(head, body) for head, body in productions)
    return ChainProgram(Program(rules, goal))
