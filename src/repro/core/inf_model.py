"""The inf-model ``IG`` (Section 3) and its finite truncations.

``IG`` is the infinite complete ``k``-ary tree over the EDB alphabet
``Σ = {b1, ..., bk}`` rooted at the constant ``c``: every node has exactly
one outgoing edge per symbol, every node except the origin has exactly one
incoming edge, and nodes correspond one-to-one to strings of ``Σ*``.

Proposition 3.1 states that for a chain program ``H`` with goal ``p(c, Y)``
and any finite-query-equivalent program ``h``::

    h(IG) = H(IG) = L(H)

Lemma 3.2 (a ground atom is derivable on ``IG`` iff it is derivable on a
finite subset of ``IG``) is what lets us work with finite truncations: the
output of a program on the depth-``d`` truncation, intersected with strings
short enough not to be affected by the missing part of the tree, equals the
corresponding slice of its output on ``IG``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from repro.core.chain import ChainProgram
from repro.core.grammar_map import to_grammar
from repro.datalog.database import Database
from repro.datalog.engine.registry import get_engine
from repro.datalog.program import Program
from repro.languages.alphabet import Word
from repro.languages.cfg_analysis import enumerate_language


ORIGIN = ""


def node_name(path: Sequence[str]) -> str:
    """The canonical node name of the string ``path`` (symbols joined by ``.``)."""
    return ".".join(path)


def node_word(name: str) -> Word:
    """Inverse of :func:`node_name`."""
    if name == ORIGIN:
        return ()
    return tuple(name.split("."))


@dataclass(frozen=True)
class InfModelTruncation:
    """The depth-``d`` truncation of ``IG`` over a fixed EDB alphabet."""

    alphabet: Tuple[str, ...]
    depth: int
    database: Database
    origin: str = ORIGIN

    def nodes(self) -> FrozenSet[str]:
        """All node names of the truncation."""
        nodes = {self.origin}
        for relation in self.alphabet:
            for (source, target) in self.database.relation(relation):
                nodes.add(source)
                nodes.add(target)
        return frozenset(nodes)


def ig_truncation(alphabet: Iterable[str], depth: int) -> InfModelTruncation:
    """Materialise the nodes of ``IG`` at distance at most *depth* from the origin."""
    symbols = tuple(sorted(alphabet))
    database = Database()
    frontier: List[Tuple[str, ...]] = [()]
    for _ in range(depth):
        next_frontier: List[Tuple[str, ...]] = []
        for path in frontier:
            for symbol in symbols:
                child = path + (symbol,)
                database.add_edge(symbol, node_name(path), node_name(child))
                next_frontier.append(child)
        frontier = next_frontier
    return InfModelTruncation(symbols, depth, database)


def program_output_on_truncation(
    program: Program, truncation: InfModelTruncation, origin_constant: object = ORIGIN
) -> FrozenSet[Word]:
    """``h(IG)`` restricted to the truncation: the set of strings selected by the goal.

    The program's goal must select nodes (its answers must be single nodes of
    the truncation); the answers are translated back into strings over the
    alphabet.  Constants named ``c`` in programs are interpreted as the
    origin by renaming: callers should build programs whose goal constant
    equals ``origin_constant`` (the empty-string node by default).
    """
    result = get_engine("seminaive").evaluate(program, truncation.database)
    answers = result.answers()
    words = set()
    for answer in answers:
        if len(answer) != 1:
            raise ValueError(
                "the goal must select single nodes of IG; got answer tuple "
                f"of arity {len(answer)}"
            )
        words.add(node_word(answer[0]))
    return frozenset(words)


def chain_program_on_truncation(chain: ChainProgram, depth: int) -> FrozenSet[Word]:
    """``H(IG)`` up to the truncation depth, for a chain program with goal ``p(c, Y)``.

    The goal constant is interpreted as the origin of ``IG`` regardless of its
    name (the paper's ``c``), by rewriting the goal.
    """
    from repro.datalog.atoms import Atom
    from repro.datalog.terms import Constant, Variable

    goal = chain.goal
    if goal is None:
        raise ValueError("the chain program needs a goal of the form p(c, Y)")
    first, second = goal.terms
    if not isinstance(first, Constant) or not isinstance(second, Variable):
        raise ValueError("chain_program_on_truncation expects a goal of the form p(c, Y)")
    truncation = ig_truncation(sorted(chain.edb_predicates()), depth)
    adjusted_goal = Atom(goal.predicate, (Constant(ORIGIN), second))
    program = chain.program.with_goal(adjusted_goal)
    return program_output_on_truncation(program, truncation)


@dataclass(frozen=True)
class Proposition31Check:
    """The outcome of checking Proposition 3.1 on a truncation."""

    depth: int
    program_output: FrozenSet[Word]
    language_slice: FrozenSet[Word]

    @property
    def agrees(self) -> bool:
        """Whether ``H(IG)`` and ``L(H)`` coincide on this truncation (Lemma 3.2 says: always)."""
        return self.program_output == self.language_slice


def check_proposition_3_1(chain: ChainProgram, depth: int) -> Proposition31Check:
    """Compare ``H(IG)`` with ``L(H)`` on all strings of length at most *depth*.

    By Lemma 3.2 the two sets agree on every truncation depth; the check is
    used both as a unit test of the machinery and as experiment E8.
    """
    grammar = to_grammar(chain)
    output = {word for word in chain_program_on_truncation(chain, depth) if len(word) <= depth}
    language = {tuple(word) for word in enumerate_language(grammar, depth)}
    return Proposition31Check(depth, frozenset(output), frozenset(language))
