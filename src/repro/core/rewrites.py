"""The "if" direction of Theorem 3.3: constructing equivalent monadic programs.

Two constructions:

* **Regular case** (constant goals).  If ``L(H)`` is regular with an explicit
  finite automaton, the query "nodes reachable from ``c`` by a path whose
  label is in ``L(H)``" is computed by a monadic program with one predicate
  per automaton state — the generalisation of rewriting a left-linear
  grammar into Program D of Example 1.1.  The symmetric construction handles
  the goal ``p(X, c)`` by running the automaton backwards.

* **Finite case** (any goal form, in particular ``p(X, X)``).  If ``L(H)``
  is finite the program is equivalent to a union of non-recursive (tableau)
  rules, one per word of the language, which is trivially monadic after the
  goal selection is applied.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.chain import ChainProgram, GoalForm, classify_goal
from repro.datalog.atoms import Atom
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Variable
from repro.errors import ValidationError
from repro.languages.alphabet import Word
from repro.languages.regular.dfa import DFA

ANSWER_PREDICATE = "answer"


def _state_predicate(prefix: str, state: object) -> str:
    return f"{prefix}_{state}"


def dfa_to_monadic_forward(
    dfa: DFA,
    constant: Constant,
    answer_predicate: str = ANSWER_PREDICATE,
    state_prefix: str = "reach",
) -> Program:
    """Monadic rules deriving ``answer(Y)`` = "Y reachable from ``constant`` via a word of L(dfa)".

    One monadic predicate per DFA state; the EDB predicates are the alphabet
    symbols (binary edge relations), exactly as in the inf-model reading of a
    database as a labeled directed graph.
    """
    trimmed = dfa.reachable().renumber()
    rules: List[Rule] = []
    start_predicate = _state_predicate(state_prefix, trimmed.start)
    rules.append(Rule(Atom(start_predicate, (constant,)), ()))
    x, y = Variable("X"), Variable("Y")
    for (state, symbol), target in sorted(trimmed.transitions.items(), key=repr):
        rules.append(
            Rule(
                Atom(_state_predicate(state_prefix, target), (y,)),
                (Atom(_state_predicate(state_prefix, state), (x,)), Atom(symbol, (x, y))),
            )
        )
    for state in sorted(trimmed.accepting, key=repr):
        rules.append(
            Rule(Atom(answer_predicate, (x,)), (Atom(_state_predicate(state_prefix, state), (x,)),))
        )
    return Program(tuple(rules), Atom(answer_predicate, (Variable("Y"),)))


def dfa_to_monadic_backward(
    dfa: DFA,
    constant: Constant,
    answer_predicate: str = ANSWER_PREDICATE,
    state_prefix: str = "coreach",
) -> Program:
    """Monadic rules deriving ``answer(X)`` = "from X a path labeled by a word of L(dfa) reaches ``constant``"."""
    trimmed = dfa.reachable().renumber()
    rules: List[Rule] = []
    x, y = Variable("X"), Variable("Y")
    for state in sorted(trimmed.accepting, key=repr):
        rules.append(Rule(Atom(_state_predicate(state_prefix, state), (constant,)), ()))
    for (state, symbol), target in sorted(trimmed.transitions.items(), key=repr):
        rules.append(
            Rule(
                Atom(_state_predicate(state_prefix, state), (x,)),
                (Atom(symbol, (x, y)), Atom(_state_predicate(state_prefix, target), (y,))),
            )
        )
    rules.append(
        Rule(Atom(answer_predicate, (x,)), (Atom(_state_predicate(state_prefix, trimmed.start), (x,)),))
    )
    return Program(tuple(rules), Atom(answer_predicate, (Variable("X"),)))


# ----------------------------------------------------------------------
# Finite languages: union of tableau (non-recursive) rules
# ----------------------------------------------------------------------
def _word_body(word: Word, first_term, last_term) -> Tuple[Atom, ...]:
    """The conjunctive body describing a path labeled by *word* from *first_term* to *last_term*."""
    if not word:
        raise ValidationError("chain-program languages never contain the empty word")
    atoms: List[Atom] = []
    previous = first_term
    for index, symbol in enumerate(word):
        is_last = index == len(word) - 1
        target = last_term if is_last else Variable(f"W{index + 1}")
        atoms.append(Atom(symbol, (previous, target)))
        previous = target
    return tuple(atoms)


def finite_language_to_monadic(
    words: Iterable[Word], goal: Atom, answer_predicate: str = ANSWER_PREDICATE
) -> Program:
    """A non-recursive monadic program equivalent to selecting *goal* on a finite-language chain query.

    ``words`` is the (finite) language ``L(H)``; the construction emits one
    rule per word.  Every goal form except the selection-free ``p(X, Y)`` is
    supported (that form needs a binary answer predicate, so there is nothing
    monadic to build — Theorem 3.3 only speaks about the five selection
    forms).
    """
    form = classify_goal(goal)
    first, second = goal.terms
    rules: List[Rule] = []
    words = sorted(set(tuple(word) for word in words))
    if form == GoalForm.FREE:
        raise ValidationError("the goal p(X, Y) applies no selection; nothing to propagate")

    if form == GoalForm.EQUAL:
        x = Variable("X")
        for word in words:
            rules.append(Rule(Atom(answer_predicate, (x,)), _word_body(word, x, x)))
        return Program(tuple(rules), Atom(answer_predicate, (x,)))

    if form == GoalForm.CONSTANT_FIRST:
        y = Variable("Y")
        for word in words:
            rules.append(Rule(Atom(answer_predicate, (y,)), _word_body(word, first, y)))
        return Program(tuple(rules), Atom(answer_predicate, (y,)))

    if form == GoalForm.CONSTANT_SECOND:
        x = Variable("X")
        for word in words:
            rules.append(Rule(Atom(answer_predicate, (x,)), _word_body(word, x, second)))
        return Program(tuple(rules), Atom(answer_predicate, (x,)))

    # Both arguments constant: build the forward rules and select the second constant.
    y = Variable("Y")
    for word in words:
        rules.append(Rule(Atom(answer_predicate, (y,)), _word_body(word, first, y)))
    return Program(tuple(rules), Atom(answer_predicate, (second,)))


# ----------------------------------------------------------------------
# Dispatcher used by the propagation decision procedure
# ----------------------------------------------------------------------
def monadic_program_from_dfa(chain: ChainProgram, dfa: DFA) -> Program:
    """Build the monadic program equivalent to *chain* given a DFA for ``L(H)``.

    Only the goal forms with a constant are meaningful here (Theorem 3.3
    part 1); the ``p(X, X)`` form goes through the finite-language
    construction instead.
    """
    goal = chain.goal
    if goal is None:
        raise ValidationError("the chain program has no goal")
    form = classify_goal(goal)
    first, second = goal.terms
    if form == GoalForm.CONSTANT_FIRST:
        return dfa_to_monadic_forward(dfa, first)
    if form == GoalForm.CONSTANT_SECOND:
        return dfa_to_monadic_backward(dfa, second)
    if form in (GoalForm.CONSTANT_BOTH, GoalForm.CONSTANT_SAME):
        program = dfa_to_monadic_forward(dfa, first)
        return program.with_goal(Atom(ANSWER_PREDICATE, (second,)))
    raise ValidationError(
        f"the DFA construction applies to constant goals; goal form is {form.name}"
    )
