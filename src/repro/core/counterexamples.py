"""The paper's hard instances, packaged as named, machine-checkable objects.

The undecidability side of Theorem 3.3 means no algorithm can decide, for an
arbitrary chain program with a constant goal, whether selection propagation
is possible.  What *can* be done — and what the paper's examples do — is to
exhibit concrete programs whose language is provably non-regular (or
provably infinite), for which the answer is therefore known.  This module
registers those witnesses together with:

* a recogniser that checks (up to renaming) whether a given grammar belongs
  to the witness family, and
* a human-readable statement of the non-regularity / infiniteness proof.

The propagation decision procedure consults this registry so that its
``NOT_PROPAGATABLE`` verdicts are always backed by an explicit proof
reference rather than a heuristic guess.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.core.chain import ChainProgram
from repro.core.grammar_map import to_grammar
from repro.datalog.parser import parse_program
from repro.languages.cfg import Grammar
from repro.languages.cfg_transforms import reduce_grammar


# ----------------------------------------------------------------------
# Witness families
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NonRegularityWitness:
    """A family of grammars whose languages are known to be non-regular."""

    name: str
    description: str
    proof: str
    matcher: Callable[[Grammar], bool]

    def matches(self, grammar: Grammar) -> bool:
        """Does the (reduced) grammar belong to this family?"""
        return self.matcher(reduce_grammar(grammar))


def _matches_balanced_pair(grammar: Grammar) -> bool:
    """Match grammars of the exact shape ``S -> a S b | a b`` (with ``a != b``).

    This is the ``{a^n b^n : n >= 1}`` family — the canonical non-regular
    context-free language, and the language of the paper's Section 7
    example.
    """
    if len(grammar.nonterminals) != 1:
        return False
    (start,) = grammar.nonterminals
    if start != grammar.start:
        return False
    productions = grammar.productions_for(start)
    if len(productions) != 2:
        return False
    recursive = [p for p in productions if start in p.rhs]
    base = [p for p in productions if start not in p.rhs]
    if len(recursive) != 1 or len(base) != 1:
        return False
    rec_rhs = recursive[0].rhs
    base_rhs = base[0].rhs
    if len(rec_rhs) != 3 or len(base_rhs) != 2:
        return False
    a, middle, b = rec_rhs
    if middle != start or a == b:
        return False
    if a not in grammar.terminals or b not in grammar.terminals:
        return False
    return base_rhs == (a, b)


def _matches_balanced_block(grammar: Grammar) -> bool:
    """Match ``S -> a S b`` shapes with longer uniform blocks, e.g. ``S -> a a S b b | a b``.

    Any such language ``{a^{kn+i} b^{ln+j}}`` with matched growth on both
    sides is non-regular by the pumping lemma as long as both blocks are
    non-empty and over distinct single letters.
    """
    if len(grammar.nonterminals) != 1:
        return False
    (start,) = grammar.nonterminals
    productions = grammar.productions_for(start)
    recursive = [p for p in productions if start in p.rhs]
    base = [p for p in productions if start not in p.rhs]
    if not recursive or not base:
        return False
    letters = set()
    for production in productions:
        letters.update(s for s in production.rhs if s in grammar.terminals)
    if len(letters) != 2:
        return False
    a, b = sorted(letters)
    for production in recursive:
        rhs = production.rhs
        if rhs.count(start) != 1:
            return False
        index = rhs.index(start)
        left, right = rhs[:index], rhs[index + 1 :]
        if not left or not right:
            return False
        if set(left) != {a} and set(left) != {b}:
            return False
        if set(right) != {b} and set(right) != {a}:
            return False
        if set(left) == set(right):
            return False
    for production in base:
        rhs = production.rhs
        if not rhs:
            return False
        split = len([s for s in rhs if s == rhs[0]])
        if set(rhs[:split]) | set(rhs[split:]) != {a, b} or set(rhs[:split]) == set(rhs[split:]):
            return False
    return True


BALANCED_PAIR = NonRegularityWitness(
    name="balanced-pair",
    description="{ b1^n b2^n : n >= 1 } — the Section 7 example language",
    proof=(
        "Pumping lemma for regular languages: if the language were regular with pumping "
        "length p, the word b1^p b2^p could be pumped inside its first block, producing "
        "b1^{p+k} b2^p for some k > 0, which is not in the language."
    ),
    matcher=_matches_balanced_pair,
)

BALANCED_BLOCK = NonRegularityWitness(
    name="balanced-block",
    description="single-nonterminal linear grammars that grow matched blocks of two distinct letters",
    proof=(
        "Pumping lemma: the number of leading first-block letters determines the number of "
        "trailing second-block letters, and this correspondence requires unbounded memory."
    ),
    matcher=_matches_balanced_block,
)

WITNESS_REGISTRY: Tuple[NonRegularityWitness, ...] = (BALANCED_PAIR, BALANCED_BLOCK)


def find_nonregularity_witness(grammar: Grammar) -> Optional[NonRegularityWitness]:
    """Return the first registered witness family the grammar belongs to, if any."""
    for witness in WITNESS_REGISTRY:
        if witness.matches(grammar):
            return witness
    return None


# ----------------------------------------------------------------------
# The paper's concrete programs
# ----------------------------------------------------------------------
def anbn_program(constant: str = "c") -> ChainProgram:
    """The Section 7 example: ``L(H) = { b1^n b2^n : n >= 1 }`` with goal ``p(c, Y)``."""
    text = f"""
    ?p({constant}, Y)
    p(X, Y) :- b1(X, X1), b2(X1, Y).
    p(X, Y) :- b1(X, X1), p(X1, Y1), b2(Y1, Y).
    """
    return ChainProgram(parse_program(text))


def cycle_program() -> ChainProgram:
    """Program CYCLE of Section 6: ``?p(X, X)`` over the transitive closure of ``b``."""
    text = """
    ?p(X, X)
    p(X, Y) :- b(X, Y).
    p(X, Y) :- p(X, Z), b(Z, Y).
    """
    return ChainProgram(parse_program(text))


def unary_infinite_program(constant: str = "c") -> ChainProgram:
    """A single-EDB chain program with infinite language (``b^+``), goal ``p(c, Y)``.

    Its language is regular (unary alphabet), so the constant-goal selection
    *is* propagatable; with goal ``p(X, X)`` it is not (infinite language),
    which is Case (a)/(b) of Lemma 6.1.
    """
    text = f"""
    ?p({constant}, Y)
    p(X, Y) :- b(X, Y).
    p(X, Y) :- p(X, Z), b(Z, Y).
    """
    return ChainProgram(parse_program(text))


def cycle_length_program(length: int) -> ChainProgram:
    """A chain program whose language is the single word ``b^length`` with goal ``p(X, X)``.

    On a database graph it asks for the nodes lying on a closed walk of
    exactly ``length`` steps; it distinguishes cycles whose length divides
    ``length`` from others — the distinguishing ability used in Lemma 6.1,
    Case (b).
    """
    if length < 1:
        raise ValueError("length must be at least 1")
    from repro.core.chain import chain_program_from_productions
    from repro.datalog.atoms import Atom
    from repro.datalog.terms import Variable

    productions = (("p", tuple("b" for _ in range(length))),)
    goal = Atom("p", (Variable("X"), Variable("X")))
    return chain_program_from_productions(productions, goal)


def nonregular_selection_instance() -> Tuple[ChainProgram, NonRegularityWitness]:
    """The canonical NOT_PROPAGATABLE instance: the ``a^n b^n`` program and its proof."""
    program = anbn_program()
    witness = find_nonregularity_witness(to_grammar(program))
    assert witness is not None
    return program, witness
