"""The language analogy: ``H ↦ G(H)`` and ``L(H)`` (Section 3 of the paper).

With each EDB predicate we associate a terminal symbol, with each IDB
predicate a nonterminal symbol; occurrences of predicates in the rules are
replaced by the associated grammar symbols, variables/parentheses/commas are
deleted, ``:-`` becomes ``→``, and the goal predicate becomes the start
symbol.  Because chain rules have nonempty bodies, the languages obtained
this way are exactly the context-free languages not containing the empty
string.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.chain import ChainProgram, chain_program_from_productions
from repro.datalog.atoms import Atom
from repro.datalog.terms import Variable
from repro.errors import ValidationError
from repro.languages.cfg import Grammar, Production


def to_grammar(chain: ChainProgram, start: str = None) -> Grammar:
    """The context-free grammar ``G(H)`` of a chain program ``H``.

    The start symbol defaults to the goal predicate; for goal-less programs a
    start nonterminal must be supplied.
    """
    if start is None:
        if chain.goal is None:
            raise ValidationError("a goal (or an explicit start symbol) is required")
        start = chain.goal.predicate
    idbs = chain.idb_predicates()
    edbs = chain.edb_predicates()
    productions = [
        Production(rule.head.predicate, tuple(atom.predicate for atom in rule.body))
        for rule in chain.rules
    ]
    return Grammar(idbs, edbs, productions, start)


def chain_language(chain: ChainProgram) -> Grammar:
    """Alias for :func:`to_grammar`: the grammar *is* the finite description of ``L(H)``."""
    return to_grammar(chain)


def from_grammar(grammar: Grammar, goal: Atom) -> ChainProgram:
    """The inverse construction: a chain program whose grammar is (isomorphic to) *grammar*.

    Every production becomes one chain rule; ε-productions are rejected
    because chain rules have nonempty bodies.
    """
    if grammar.has_epsilon_productions():
        raise ValidationError("chain programs cannot encode ε-productions")
    if goal.predicate != grammar.start:
        raise ValidationError(
            f"goal predicate {goal.predicate!r} differs from the start symbol {grammar.start!r}"
        )
    productions: Tuple[Tuple[str, Tuple[str, ...]], ...] = tuple(
        (production.lhs, production.rhs) for production in grammar.productions
    )
    return chain_program_from_productions(productions, goal)


def left_linear_grammar_to_program(grammar: Grammar, goal: Atom) -> ChainProgram:
    """Specialised constructor used by the Theorem 3.3 "if" direction.

    The grammar must be left linear; the resulting chain program is the
    direct syntactic transcription (Program ``H_left`` in the proof).
    """
    from repro.languages.cfg_properties import is_left_linear

    if not is_left_linear(grammar):
        raise ValidationError("grammar is not left linear")
    return from_grammar(grammar, goal)


def predicate_terminal_map(chain: ChainProgram) -> Dict[str, str]:
    """The (identity) association between EDB predicates and terminal symbols.

    The map is trivial because we reuse predicate names as grammar symbols,
    but having it explicit keeps call sites honest about which direction of
    the analogy they use.
    """
    return {name: name for name in sorted(chain.edb_predicates())}
