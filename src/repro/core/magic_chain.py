"""Magic sets for chain programs as language quotients (Section 7 of the paper).

For a chain program ``H`` with goal ``p(c, Y)``:

* each rule ``r(X, Y) :- r1(X, X1), ..., rn(X_{n-1}, Y)`` yields a regular
  expression ``R_i`` obtained from the corresponding grammar production by
  replacing every nonterminal with ``Σ*`` and adding ``Σ*`` at both ends
  (the paper writes ``*`` for the don't-care);
* the magic set for the rule's first variable corresponds to the quotient
  ``L(H) / R_i``;
* when the quotient (computed here from ``L(H)`` itself if a regular
  certificate exists, or from the regular envelope ``R(H) ⊇ L(H)``
  otherwise) is regular, it compiles into monadic *magic* rules that guard
  the original rules and prune useless applications.

The classical syntactic magic-set transformation (reference [5]) lives in
:mod:`repro.datalog.transforms.magic`; the present module is the paper's
language-theoretic reading of it, and the two are compared in benchmark E5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.chain import ChainProgram, GoalForm
from repro.core.grammar_map import to_grammar
from repro.datalog.atoms import Atom
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Variable
from repro.errors import ValidationError
from repro.languages.approximation import RegularEnvelope, regular_envelope, strongly_regular_to_nfa
from repro.languages.cfg import Grammar
from repro.languages.cfg_properties import is_strongly_regular
from repro.languages.regular.dfa import DFA
from repro.languages.regular.minimize import minimize_dfa
from repro.languages.regular.operations import dfa_union, right_quotient
from repro.languages.regular.regex import AnyStar, Concat, Regex, Symbol

MAGIC_PREDICATE = "magic"
MAGIC_STATE_PREFIX = "magic_state"


def rule_context_regex(chain: ChainProgram, rule: Rule) -> Regex:
    """The paper's per-rule regular expression: ``Σ*`` for every IDB, terminals kept.

    E.g. ``p(X,Y) :- b1(X,X1), p(X1,Y1), b2(Y1,Y)`` yields ``Σ* b1 Σ* b2 Σ*``.
    """
    alphabet = sorted(chain.edb_predicates())
    idbs = chain.idb_predicates()
    parts: List[Regex] = [AnyStar(alphabet)]
    for atom in rule.body:
        if atom.predicate in idbs:
            parts.append(AnyStar(alphabet))
        else:
            parts.append(Symbol(atom.predicate))
    parts.append(AnyStar(alphabet))
    return Concat(parts)


@dataclass(frozen=True)
class RuleQuotient:
    """The quotient analysis of one rule."""

    rule: Rule
    context_regex: Regex
    quotient: DFA
    exact: bool


@dataclass(frozen=True)
class MagicAnalysis:
    """Quotient languages of every rule plus the language automaton they divide."""

    chain: ChainProgram
    language_dfa: DFA
    language_exact: bool
    rule_quotients: Tuple[RuleQuotient, ...]

    def magic_language(self) -> DFA:
        """The union of the per-rule quotients (the binding-reachability language)."""
        result: Optional[DFA] = None
        for entry in self.rule_quotients:
            result = entry.quotient if result is None else dfa_union(result, entry.quotient)
        assert result is not None
        return minimize_dfa(result)

    @property
    def all_exact(self) -> bool:
        """True when every quotient used ``L(H)`` itself, not a regular envelope ``R(H)``."""
        return self.language_exact and all(entry.exact for entry in self.rule_quotients)


def _language_automaton(grammar: Grammar) -> Tuple[DFA, bool]:
    """A DFA for ``L(H)`` when a certificate exists, else for the envelope ``R(H)``."""
    if is_strongly_regular(grammar):
        return minimize_dfa(strongly_regular_to_nfa(grammar).to_dfa()), True
    envelope: RegularEnvelope = regular_envelope(grammar)
    return minimize_dfa(envelope.nfa.to_dfa()), envelope.exact


def analyze_magic(chain: ChainProgram) -> MagicAnalysis:
    """Compute every per-rule quotient of Section 7 for a ``p(c, Y)`` chain program."""
    if chain.goal is None or chain.goal_form() != GoalForm.CONSTANT_FIRST:
        raise ValidationError("the quotient construction is defined for goals of the form p(c, Y)")
    grammar = to_grammar(chain)
    alphabet = sorted(chain.edb_predicates())
    language_dfa, exact = _language_automaton(grammar)
    quotients: List[RuleQuotient] = []
    for rule in chain.rules:
        regex = rule_context_regex(chain, rule)
        quotient = right_quotient(language_dfa, regex.to_nfa(alphabet))
        quotients.append(RuleQuotient(rule, regex, minimize_dfa(quotient), exact))
    return MagicAnalysis(chain, language_dfa, exact, tuple(quotients))


def magic_rules_from_dfa(
    magic_dfa: DFA,
    constant: Constant,
    magic_predicate: str = MAGIC_PREDICATE,
    state_prefix: str = MAGIC_STATE_PREFIX,
) -> Tuple[Rule, ...]:
    """Monadic rules computing "reachable from ``constant`` along a prefix of the magic language".

    One predicate per DFA state tracks the exact state; the ``magic``
    predicate holds for every node reached at *any* state, which makes the
    guard the prefix closure of the quotient language (a superset of the
    exact magic set — sound for pruning, as discussed in DESIGN.md).
    """
    trimmed = magic_dfa.reachable().renumber()
    x, y = Variable("X"), Variable("Y")
    rules: List[Rule] = [Rule(Atom(f"{state_prefix}_{trimmed.start}", (constant,)), ())]
    for (state, symbol), target in sorted(trimmed.transitions.items(), key=repr):
        rules.append(
            Rule(
                Atom(f"{state_prefix}_{target}", (y,)),
                (Atom(f"{state_prefix}_{state}", (x,)), Atom(symbol, (x, y))),
            )
        )
    for state in sorted(trimmed.states, key=repr):
        rules.append(
            Rule(Atom(magic_predicate, (x,)), (Atom(f"{state_prefix}_{state}", (x,)),))
        )
    return tuple(rules)


def magic_transform_chain(chain: ChainProgram) -> Program:
    """The full Section 7 transformation of a ``p(c, Y)`` chain program.

    The result guards every original rule with ``magic(X)`` and defines the
    magic predicate by monadic rules derived from the quotient languages —
    the generalisation of the transformed program printed in the paper::

        ?p(c, Y)
        magic(c) :-
        magic(Y) :- magic(X), b1(X, Y)
        p(X, Y)  :- magic(X), b1(X, X1), b2(X1, Y)
        p(X, Y)  :- magic(X), b1(X, X1), p(X1, Y1), b2(Y1, Y)
    """
    analysis = analyze_magic(chain)
    constant = chain.goal.terms[0]
    assert isinstance(constant, Constant)
    magic_dfa = analysis.magic_language()
    rules: List[Rule] = list(magic_rules_from_dfa(magic_dfa, constant))
    guard = Atom(MAGIC_PREDICATE, (Variable("X"),))
    for rule in chain.rules:
        rules.append(Rule(rule.head, (guard,) + rule.body))
    return Program(tuple(rules), chain.goal)


@dataclass(frozen=True)
class ChainMagic:
    """The Section 7 quotient-based magic transformation as a pipeline Transform.

    The language-theoretic counterpart of
    :class:`repro.datalog.transforms.MagicSets`: it requires a chain program
    with a ``p(c, Y)`` goal and guards every rule with monadic magic
    predicates derived from the quotient languages.  Benchmark E5 compares
    the two inside the same :class:`~repro.datalog.session.QuerySession`.
    """

    name: str = "chain-magic"

    def apply(self, program: Program) -> Program:
        """Apply the Section 7 quotient-based magic rewrite as a pipeline stage."""
        return magic_transform_chain(ChainProgram.coerce(program))


def paper_example_transformed_program(constant: str = "c") -> Program:
    """The transformed program exactly as printed in Section 7 (for the ``b1^n b2^n`` example)."""
    from repro.datalog.parser import parse_program

    text = f"""
    ?p({constant}, Y)
    magic({constant}).
    magic(Y) :- magic(X), b1(X, Y).
    p(X, Y) :- magic(X), b1(X, X1), b2(X1, Y).
    p(X, Y) :- magic(X), b1(X, X1), p(X1, Y1), b2(Y1, Y).
    """
    return parse_program(text)
