"""The selection-propagation decision procedure (Theorem 3.3 / Corollary 3.4).

Theorem 3.3 characterises the chain programs into which a selection can be
propagated (i.e. that have a finite-query-equivalent *monadic* program):

1. goals with a constant (``p(c,Y)``, ``p(X,c)``, ``p(c,c1)``, ``p(c,c)``):
   possible **iff** ``L(H)`` is regular — an undecidable condition;
2. the goal ``p(X, X)``: possible **iff** ``L(H)`` is finite — decidable.

A faithful implementation therefore has to be *partial* on case (1): this
module returns three-valued verdicts.  ``PROPAGATABLE`` and
``NOT_PROPAGATABLE`` are only reported with a certificate (a decidable
regularity criterion and a constructed monadic program, or a registered
non-regularity proof); everything else is ``UNKNOWN`` — which is not a
weakness of the implementation but the content of Corollary 3.4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.core.chain import ChainProgram, GoalForm
from repro.core.counterexamples import NonRegularityWitness, find_nonregularity_witness
from repro.core.grammar_map import to_grammar
from repro.core.rewrites import finite_language_to_monadic, monadic_program_from_dfa
from repro.datalog.database import Database
from repro.datalog.program import Program
from repro.datalog.session import QuerySession
from repro.errors import LanguageAnalysisError, ValidationError
from repro.languages.approximation import strongly_regular_to_nfa
from repro.languages.cfg import Grammar
from repro.languages.cfg_analysis import enumerate_finite_language, is_finite_language
from repro.languages.cfg_properties import (
    RegularityEvidence,
    is_strongly_regular,
    is_unary_alphabet,
    regularity_evidence,
)
from repro.languages.cfg_transforms import reduce_grammar
from repro.languages.regular.dfa import DFA
from repro.languages.regular.minimize import minimize_dfa
from repro.languages.unary import length_set_to_dfa, unary_length_set


class PropagationVerdict(Enum):
    """Three-valued answer to "can the selection be propagated?"."""

    PROPAGATABLE = "propagatable"
    NOT_PROPAGATABLE = "not propagatable"
    UNKNOWN = "unknown"
    NO_SELECTION = "no selection to propagate"


@dataclass(frozen=True)
class PropagationResult:
    """Verdict, justification, and (when constructed) the equivalent monadic program."""

    verdict: PropagationVerdict
    goal_form: GoalForm
    reason: str
    grammar: Grammar
    regularity: Optional[RegularityEvidence] = None
    witness: Optional[NonRegularityWitness] = None
    monadic_program: Optional[Program] = None
    certificate_dfa: Optional[DFA] = None
    construction_exact: bool = True

    @property
    def propagatable(self) -> Optional[bool]:
        """``True``/``False`` when decided, ``None`` on the undecidable frontier."""
        if self.verdict == PropagationVerdict.PROPAGATABLE:
            return True
        if self.verdict == PropagationVerdict.NOT_PROPAGATABLE:
            return False
        return None

    def session(self, database: Database) -> QuerySession:
        """A :class:`QuerySession` running the constructed monadic program.

        Raises :class:`ValidationError` when no monadic program was
        materialised (non-propagatable or unknown verdicts, or certified
        regularity without an automaton construction).
        """
        if self.monadic_program is None:
            raise ValidationError(
                f"no monadic program was constructed ({self.verdict.value}: {self.reason})"
            )
        return QuerySession(self.monadic_program, database)


class SelectionPropagator:
    """Decision procedure plus monadic-program constructor for chain programs."""

    def __init__(self, unary_sample_bound: int = 40):
        self.unary_sample_bound = unary_sample_bound

    # ------------------------------------------------------------------
    def analyze(self, chain: ChainProgram) -> PropagationResult:
        """Apply Theorem 3.3 to the chain program's goal."""
        if chain.goal is None:
            raise ValidationError("the chain program has no goal")
        form = chain.goal_form()
        grammar = reduce_grammar(to_grammar(chain))

        if form == GoalForm.FREE:
            return PropagationResult(
                PropagationVerdict.NO_SELECTION,
                form,
                "the goal p(X, Y) applies no selection; Theorem 3.3 does not apply",
                grammar,
            )

        if form == GoalForm.EQUAL:
            return self._analyze_equality_goal(chain, grammar)
        return self._analyze_constant_goal(chain, grammar, form)

    # ------------------------------------------------------------------
    def _analyze_equality_goal(self, chain: ChainProgram, grammar: Grammar) -> PropagationResult:
        """Theorem 3.3 part (2): decidable via finiteness of L(H)."""
        if is_finite_language(grammar):
            words = enumerate_finite_language(grammar)
            program = finite_language_to_monadic(words, chain.goal)
            return PropagationResult(
                PropagationVerdict.PROPAGATABLE,
                GoalForm.EQUAL,
                f"L(H) is finite ({len(words)} words); the program is equivalent to a union "
                "of non-recursive rules (Theorem 3.3 part 2, 'if' direction)",
                grammar,
                regularity=RegularityEvidence(True, "finite language"),
                monadic_program=program,
            )
        return PropagationResult(
            PropagationVerdict.NOT_PROPAGATABLE,
            GoalForm.EQUAL,
            "L(H) is infinite, so by Theorem 3.3 part 2 no equivalent monadic program exists",
            grammar,
            regularity=RegularityEvidence(None, "infinite language"),
        )

    # ------------------------------------------------------------------
    def _analyze_constant_goal(
        self, chain: ChainProgram, grammar: Grammar, form: GoalForm
    ) -> PropagationResult:
        """Theorem 3.3 part (1): regular iff propagatable; only partially decidable."""
        evidence = regularity_evidence(grammar)

        if evidence.regular:
            program, dfa, exact, note = self._construct_for_constant_goal(chain, grammar, evidence)
            return PropagationResult(
                PropagationVerdict.PROPAGATABLE,
                form,
                f"L(H) is regular ({evidence.reason}); {note}",
                grammar,
                regularity=evidence,
                monadic_program=program,
                certificate_dfa=dfa,
                construction_exact=exact,
            )

        witness = find_nonregularity_witness(grammar)
        if witness is not None:
            return PropagationResult(
                PropagationVerdict.NOT_PROPAGATABLE,
                form,
                f"L(H) belongs to the non-regular family '{witness.name}': {witness.description}",
                grammar,
                regularity=RegularityEvidence(False, witness.name),
                witness=witness,
            )

        return PropagationResult(
            PropagationVerdict.UNKNOWN,
            form,
            "no decidable regularity certificate applies and no registered non-regularity "
            "witness matches; the question is undecidable in general (Corollary 3.4)",
            grammar,
            regularity=evidence,
        )

    # ------------------------------------------------------------------
    def _construct_for_constant_goal(
        self, chain: ChainProgram, grammar: Grammar, evidence: RegularityEvidence
    ):
        """Build a DFA for L(H) under the given certificate, then the monadic program."""
        if is_finite_language(grammar):
            words = enumerate_finite_language(grammar)
            program = finite_language_to_monadic(words, chain.goal)
            return (
                program,
                None,
                True,
                f"constructed a union of {len(words)} non-recursive rules",
            )
        if is_strongly_regular(grammar):
            dfa = minimize_dfa(strongly_regular_to_nfa(grammar).to_dfa())
            program = monadic_program_from_dfa(chain, dfa)
            return (
                program,
                dfa,
                True,
                f"constructed a {len(dfa.states)}-state DFA and one monadic predicate per state",
            )
        if is_unary_alphabet(grammar):
            # The periodic-set fit is a sampling heuristic: a language whose
            # period or threshold exceeds the bound makes it fail, so retry
            # with doubled bounds before giving up on the construction — the
            # regularity *certificate* above is unaffected either way.
            lengths = None
            failure: Optional[LanguageAnalysisError] = None
            for attempt in range(3):
                try:
                    lengths = unary_length_set(
                        grammar, self.unary_sample_bound << attempt
                    )
                    break
                except LanguageAnalysisError as error:
                    failure = error
            if lengths is None:
                return (
                    None,
                    None,
                    True,
                    "regularity is certified, but the unary length set did not fit "
                    f"an ultimately periodic form within the sampling bounds "
                    f"({failure}); no monadic program was materialised",
                )
            (terminal,) = {
                s for p in grammar.productions for s in p.rhs if s in grammar.terminals
            }
            dfa = minimize_dfa(length_set_to_dfa(lengths, terminal))
            program = monadic_program_from_dfa(chain, dfa)
            return (
                program,
                dfa,
                lengths.exact,
                "unary language: built the ultimately periodic length automaton "
                f"(verified empirically up to length {lengths.verified_up_to})",
            )
        # Regular by a structural theorem (e.g. non-self-embedding) but without an
        # implemented exact automaton construction.
        return (
            None,
            None,
            True,
            "regularity is certified, but no automaton construction is implemented for "
            "this certificate; no monadic program was materialised",
        )


def propagate_selection(chain: ChainProgram) -> PropagationResult:
    """Convenience wrapper: analyse with default settings."""
    return SelectionPropagator().analyze(chain)


@dataclass(frozen=True)
class MonadicRewrite:
    """The Theorem 3.3 monadic rewrite as a pipeline :class:`Transform`.

    Applies :func:`propagate_selection` to the (chain) program and returns
    the constructed finite-query-equivalent monadic program.  Raises
    :class:`ValidationError` when the verdict does not come with a
    construction — callers wanting the three-valued verdict itself should
    use :func:`propagate_selection` directly.
    """

    name: str = "monadic-rewrite"
    unary_sample_bound: int = 40

    def apply(self, program: Program) -> Program:
        """Run Theorem 3.3 and return the equivalent monadic program, or raise."""
        chain = ChainProgram.coerce(program)
        result = SelectionPropagator(self.unary_sample_bound).analyze(chain)
        if result.monadic_program is None:
            raise ValidationError(
                f"selection cannot be propagated ({result.verdict.value}: {result.reason})"
            )
        return result.monadic_program
