"""Every program literally written in the paper, as a ready-made object.

Example 1.1's four alternative definitions of "the ancestors of john"
(Programs A–D), the Section 7 ``b1^n b2^n`` program and its transformed
form, and the Section 6 CYCLE program.  Having them in one catalogue keeps
tests, examples, and benchmarks in sync with the paper's text.
"""

from __future__ import annotations

from typing import Dict

from repro.core.chain import ChainProgram
from repro.core.counterexamples import anbn_program, cycle_program
from repro.core.magic_chain import paper_example_transformed_program
from repro.datalog.parser import parse_program
from repro.datalog.program import Program


def program_a(constant: str = "john") -> ChainProgram:
    """Example 1.1, Program A: left-linear ancestor recursion.

    ``?anc(john, Y);  anc(X,Y) :- par(X,Y);  anc(X,Y) :- anc(X,Z), par(Z,Y)``
    """
    text = f"""
    ?anc({constant}, Y)
    anc(X, Y) :- par(X, Y).
    anc(X, Y) :- anc(X, Z), par(Z, Y).
    """
    return ChainProgram(parse_program(text))


def program_b(constant: str = "john") -> ChainProgram:
    """Example 1.1, Program B: right-linear ancestor recursion.

    ``anc(X,Y) :- par(X,Z), anc(Z,Y)`` — the grammar is right linear.
    """
    text = f"""
    ?anc({constant}, Y)
    anc(X, Y) :- par(X, Y).
    anc(X, Y) :- par(X, Z), anc(Z, Y).
    """
    return ChainProgram(parse_program(text))


def program_c(constant: str = "john") -> ChainProgram:
    """Example 1.1, Program C: non-linear (divide-and-conquer) ancestor recursion."""
    text = f"""
    ?anc({constant}, Y)
    anc(X, Y) :- par(X, Y).
    anc(X, Y) :- anc(X, Z), anc(Z, Y).
    """
    return ChainProgram(parse_program(text))


def program_d(constant: str = "john") -> Program:
    """Example 1.1, Program D: the truly efficient monadic form.

    ``ancjohn(Y) :- par(john, Y);  ancjohn(Y) :- ancjohn(Z), par(Z, Y)``
    Not a chain program (its derived predicate is monadic), so it is returned
    as a plain :class:`Program`.
    """
    text = f"""
    ?anc{constant}(Y)
    anc{constant}(Y) :- par({constant}, Y).
    anc{constant}(Y) :- anc{constant}(Z), par(Z, Y).
    """
    return parse_program(text)


def ancestor_portfolio(constant: str = "john") -> Dict[str, object]:
    """All four Example 1.1 programs keyed by their paper names."""
    return {
        "A": program_a(constant),
        "B": program_b(constant),
        "C": program_c(constant),
        "D": program_d(constant),
    }


def section7_program(constant: str = "c") -> ChainProgram:
    """The Section 7 example chain program with ``L(H) = { b1^n b2^n }``."""
    return anbn_program(constant)


def section7_transformed(constant: str = "c") -> Program:
    """The magic-set transformed program exactly as printed in Section 7."""
    return paper_example_transformed_program(constant)


def section6_cycle_program() -> ChainProgram:
    """Program CYCLE of Section 6 (goal ``p(X, X)`` over transitive closure)."""
    return cycle_program()


def same_generation_program(constant: str = "c") -> ChainProgram:
    """The same-generation chain program (language ``up^n down^n``), a second non-regular instance."""
    text = f"""
    ?sg({constant}, Y)
    sg(X, Y) :- up(X, X1), down(X1, Y).
    sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).
    """
    return ChainProgram(parse_program(text))
