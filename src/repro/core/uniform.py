"""Uniform chain programs and their containment problem (Proposition 8.1).

A *uniform* program associates with every IDB ``p`` a dedicated EDB ``b_p``
of the same arity appearing exactly in the rule ``p(X, Y) :- b_p(X, Y)``.
Proposition 8.1: finite query containment and equivalence of uniform chain
programs are **undecidable** in general (via Blattner's undecidability of
sentential-form equality), and **decidable** for uniform chain programs with
a single IDB.

What is implemented here:

* ``uniformize`` — turn any chain program into its uniform companion;
* the decidable fragments of containment used by the library: containment
  is decided exactly whenever the right-hand program has a regular
  certificate (CFL ⊆ regular is decidable via the Bar-Hillel construction),
  and whenever both languages are finite;
* a bounded sentential-form / word comparison for the general case, which
  can refute containment with a witness but never affirm it — mirroring the
  undecidability result.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Tuple

from repro.core.chain import ChainProgram, chain_rule
from repro.core.grammar_map import to_grammar
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.languages.alphabet import Word
from repro.languages.approximation import strongly_regular_to_nfa
from repro.languages.cfg_analysis import (
    enumerate_finite_language,
    is_finite_language,
    language_sample_equal,
    strings_of_length,
)
from repro.languages.cfg_properties import is_strongly_regular
from repro.languages.cfg_transforms import reduce_grammar
from repro.languages.intersection import cfl_subset_of_regular
from repro.languages.regular.minimize import minimize_dfa


UNIFORM_EDB_PREFIX = "base_"


def uniformize(chain: ChainProgram) -> ChainProgram:
    """Add, for every IDB ``p``, the EDB ``base_p`` and the rule ``p(X, Y) :- base_p(X, Y)``."""
    extra_rules: Tuple[Rule, ...] = tuple(
        chain_rule(predicate, (f"{UNIFORM_EDB_PREFIX}{predicate}",))
        for predicate in sorted(chain.idb_predicates())
    )
    return ChainProgram(Program(chain.rules + extra_rules, chain.goal))


def is_uniform(chain: ChainProgram) -> bool:
    """Does every IDB have its dedicated single-use base EDB rule?"""
    idbs = chain.idb_predicates()
    for predicate in idbs:
        expected_edb = f"{UNIFORM_EDB_PREFIX}{predicate}"
        defining = [
            rule
            for rule in chain.rules
            if rule.head.predicate == predicate
            and len(rule.body) == 1
            and rule.body[0].predicate == expected_edb
        ]
        if len(defining) != 1:
            return False
        uses = sum(
            1 for rule in chain.rules for atom in rule.body if atom.predicate == expected_edb
        )
        if uses != 1:
            return False
    return True


def has_single_idb(chain: ChainProgram) -> bool:
    """The decidable case of Proposition 8.1."""
    return len(chain.idb_predicates()) == 1


class ContainmentVerdict(Enum):
    """Three-valued containment answer."""

    CONTAINED = "contained"
    NOT_CONTAINED = "not contained"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class ContainmentResult:
    """Verdict plus the method used and, when refuted, a witness word."""

    verdict: ContainmentVerdict
    method: str
    witness: Optional[Word] = None


def language_containment(
    left: ChainProgram, right: ChainProgram, sample_length: int = 8
) -> ContainmentResult:
    """Decide (when possible) ``L(left) ⊆ L(right)``.

    For chain programs, finite query containment coincides with containment
    of the associated languages (by the path-witness claim used in the proof
    of Theorem 3.3), so this is the containment test behind
    Proposition 8.1's experiments.
    """
    left_grammar = reduce_grammar(to_grammar(left))
    right_grammar = reduce_grammar(to_grammar(right))

    if is_strongly_regular(right_grammar):
        dfa = minimize_dfa(strongly_regular_to_nfa(right_grammar).to_dfa())
        contained, witness = cfl_subset_of_regular(left_grammar, dfa)
        if contained:
            return ContainmentResult(ContainmentVerdict.CONTAINED, "CFL ⊆ regular (Bar-Hillel)")
        return ContainmentResult(
            ContainmentVerdict.NOT_CONTAINED, "CFL ⊆ regular (Bar-Hillel)", witness
        )

    if is_finite_language(left_grammar):
        words = enumerate_finite_language(left_grammar)
        for word in sorted(words):
            from repro.languages.cfg_analysis import cfg_membership

            if not cfg_membership(right_grammar, word):
                return ContainmentResult(
                    ContainmentVerdict.NOT_CONTAINED, "finite left language, membership check", word
                )
        return ContainmentResult(ContainmentVerdict.CONTAINED, "finite left language, membership check")

    # Bounded refutation attempt.
    for length in range(1, sample_length + 1):
        left_words = strings_of_length(left_grammar, length)
        right_words = strings_of_length(right_grammar, length)
        difference = left_words - right_words
        if difference:
            return ContainmentResult(
                ContainmentVerdict.NOT_CONTAINED,
                f"bounded word comparison up to length {sample_length}",
                sorted(difference)[0],
            )
    return ContainmentResult(
        ContainmentVerdict.UNKNOWN, f"bounded word comparison up to length {sample_length}"
    )


def language_equivalence(
    left: ChainProgram, right: ChainProgram, sample_length: int = 8
) -> Tuple[ContainmentResult, ContainmentResult]:
    """Both containment directions (equivalence holds when both are CONTAINED)."""
    return (
        language_containment(left, right, sample_length),
        language_containment(right, left, sample_length),
    )


def bounded_equivalence_check(
    left: ChainProgram, right: ChainProgram, max_length: int = 8
) -> Tuple[bool, Optional[Word]]:
    """Compare the two languages on all words up to *max_length* (refutation-only)."""
    return language_sample_equal(to_grammar(left), to_grammar(right), max_length)
