"""The Lemma 5.1 construction, executable: monadic programs on strings via WS1S.

Lemma 5.1 proves that if a *monadic* program ``h`` is finite-query-equivalent
to a chain program ``H`` with goal ``p(c, c)``, then ``L(H)`` is regular.
The proof rewrites both programs over string-shaped databases (monadic letter
predicates plus one ``next`` relation), expresses the semantics of the
monadic program as a WS1S formula with a prefix of universal second-order
quantifiers, and invokes Büchi–Elgot.

This module implements the constructive core of that argument for monadic
programs directly: given a monadic program over letter predicates and
``next``, it produces the WS1S formula ``φ6`` and extracts the regular
language of strings on which the program derives its goal — thereby
exhibiting, for concrete monadic programs, the regular language that
Lemma 5.1 says must exist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Variable
from repro.errors import ValidationError
from repro.languages.regular.dfa import DFA
from repro.languages.regular.minimize import minimize_dfa
from repro.logic.ws1s import (
    ContainsZero,
    Singleton,
    SubsetEq,
    SuccSets,
    WAnd,
    WExists,
    WFormula,
    WImplies,
    WNot,
    WTrue,
    fo_forall,
    fo_zero,
    forall_many,
    member,
    partition_word_dfa,
)


@dataclass(frozen=True)
class StringProgramEncoding:
    """A monadic program over a string signature: letter EDBs plus ``next``."""

    program: Program
    letter_predicates: Tuple[str, ...]
    next_predicate: str = "next"
    goal_constant_track: str = "POS0"


def _letter_track(predicate: str) -> str:
    return f"LETTER_{predicate}"


def _idb_track(predicate: str) -> str:
    return f"IDB_{predicate}"


def _string_structure_formula(letter_tracks: Sequence[str]) -> WFormula:
    """``φ2`` of Lemma 5.1: the letter sets are pairwise disjoint.

    The paper's ``φ3`` additionally requires the letters to cover a complete
    initial segment; for the word-language extraction that follows
    (:func:`repro.logic.ws1s.partition_word_dfa`) only assignments that *are*
    contiguous strings starting at 0 are ever queried, so pairwise
    disjointness is the only structural conjunct we need to assert.
    """
    position = "PPART"
    disjoint_parts: List[WFormula] = []
    for i, first in enumerate(letter_tracks):
        for second in letter_tracks[i + 1 :]:
            disjoint_parts.append(
                WNot(WAnd((member(position, first), member(position, second))))
            )
    if not disjoint_parts:
        return WTrue()
    return fo_forall(position, WAnd(disjoint_parts))


def _at_least_one(parts: Sequence[WFormula]) -> WFormula:
    from repro.logic.ws1s import WOr

    return WOr(tuple(parts))


def _rule_formula(rule: Rule, encoding: StringProgramEncoding) -> WFormula:
    """One rule viewed as a universally quantified Horn clause over positions (``φ4``/``φ5``)."""
    variable_tracks: Dict[str, str] = {}
    constraints: List[WFormula] = []

    def track_of(term) -> str:
        """The WS1S first-order track carrying this term's string position."""
        if isinstance(term, Variable):
            if term.name not in variable_tracks:
                variable_tracks[term.name] = f"POSVAR_{term.name}"
            return variable_tracks[term.name]
        if isinstance(term, Constant):
            # Lemma 5.1 interprets the constant c as the integer 0.
            return encoding.goal_constant_track
        raise ValidationError(f"unexpected term {term!r}")

    def atom_formula(atom) -> WFormula:
        """One body/head atom as a WS1S membership (or successor) constraint."""
        if atom.predicate == encoding.next_predicate:
            left, right = atom.terms
            return SuccSets(track_of(left), track_of(right))
        if atom.arity != 1:
            raise ValidationError(
                f"the Lemma 5.1 encoding needs monadic predicates or next; got {atom}"
            )
        (term,) = atom.terms
        if atom.predicate in encoding.letter_predicates:
            return member(track_of(term), _letter_track(atom.predicate))
        return member(track_of(term), _idb_track(atom.predicate))

    body_parts = [atom_formula(atom) for atom in rule.body]
    head_part = atom_formula(rule.head)
    implication = WImplies(WAnd(body_parts) if body_parts else WTrue(), head_part)

    # Safety condition of Lemma 5.1 (step 4): restrict the first-order
    # quantification to positions that belong to the input string, i.e. carry
    # a letter.  Without it, the interpreted successor would let rules fire on
    # positions beyond the database's active domain.
    def in_string(track: str) -> WFormula:
        """The position carries some input letter (Lemma 5.1's safety restriction)."""
        return _at_least_one(
            [member(track, _letter_track(p)) for p in encoding.letter_predicates]
        )

    quantified = implication
    for name, track in variable_tracks.items():
        del name
        quantified = fo_forall(track, WImplies(in_string(track), quantified))
    if constraints:
        quantified = WAnd([*constraints, quantified])
    return quantified


def program_semantics_formula(encoding: StringProgramEncoding) -> WFormula:
    """``φ6``: for all IDB interpretations, (all rules hold) implies the goal holds.

    The free second-order variables of the result are the letter tracks (and
    the goal-constant position track, which is constrained to be ``{0}``).
    """
    program = encoding.program
    goal = program.goal
    if goal is None:
        raise ValidationError("the monadic program needs a goal")
    if goal.arity != 1 or not isinstance(goal.terms[0], Constant):
        raise ValidationError("the Lemma 5.1 encoding expects a goal of the form w(c)")

    rule_parts = [_rule_formula(rule, encoding) for rule in program.rules]
    goal_track = _idb_track(goal.predicate)
    goal_holds = member(encoding.goal_constant_track, goal_track)
    implication = WImplies(WAnd(rule_parts), goal_holds)

    idb_tracks = sorted({_idb_track(p) for p in program.idb_predicates()})
    universally = forall_many(idb_tracks, implication)

    constant_is_zero = fo_zero(encoding.goal_constant_track)
    partition = _string_structure_formula([_letter_track(p) for p in encoding.letter_predicates])
    return WExists(
        encoding.goal_constant_track,
        WAnd((Singleton(encoding.goal_constant_track), constant_is_zero, partition, universally)),
    )


def accepted_string_language(encoding: StringProgramEncoding) -> DFA:
    """The regular language of strings on which the monadic program derives its goal.

    This is the executable content of Lemma 5.1: the language is produced as
    an explicit DFA over the letter alphabet, witnessing its regularity.
    """
    formula = program_semantics_formula(encoding)
    automaton = formula.automaton()
    letters = {_letter_track(p): p for p in encoding.letter_predicates}
    return minimize_dfa(partition_word_dfa(automaton, letters))


def string_database(word: Sequence[str], letter_predicates: Sequence[str], next_predicate: str = "next"):
    """The string database used to cross-check the WS1S answer against direct evaluation.

    Positions are integers ``0..n-1``; ``next(i, i+1)`` holds, and the letter
    predicate of position ``i`` holds at ``i``.
    """
    from repro.datalog.database import Database

    database = Database()
    for index, symbol in enumerate(word):
        if symbol not in letter_predicates:
            raise ValidationError(f"symbol {symbol!r} is not a declared letter predicate")
        database.add_fact(symbol, (index,))
        if index + 1 < len(word):
            database.add_fact(next_predicate, (index, index + 1))
    return database
