"""Finite query equivalence of programs: exact fragments and empirical testing.

Finite query equivalence of chain programs is undecidable in general
(Shmueli's result, recalled in Section 8), but two fragments are decidable
with the machinery in this library:

* both languages finite — compare the enumerated languages;
* at least one side with an exact regular certificate — CFL vs regular
  containment is decidable in both directions via Bar-Hillel intersection.

For everything else, the library offers honest *empirical* checks: compare
the languages on all words up to a bound, and compare the query answers on
randomly generated databases (the definition of finite query equivalence
quantifies over all databases, so these checks can refute equivalence with a
certificate but never prove it).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, List, Optional, Tuple

from repro.core.chain import ChainProgram
from repro.core.grammar_map import to_grammar
from repro.core.uniform import ContainmentVerdict, language_containment
from repro.datalog.database import Database
from repro.datalog.engine.registry import get_engine
from repro.datalog.program import Program
from repro.languages.alphabet import Word
from repro.languages.cfg_analysis import (
    enumerate_finite_language,
    is_finite_language,
    language_sample_equal,
)


class EquivalenceVerdict(Enum):
    """Three-valued equivalence answer."""

    EQUIVALENT = "equivalent"
    NOT_EQUIVALENT = "not equivalent"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class EquivalenceResult:
    """Verdict, the method that produced it, and a witness when refuted."""

    verdict: EquivalenceVerdict
    method: str
    witness: Optional[Word] = None


def chain_language_equivalence(
    left: ChainProgram, right: ChainProgram, sample_length: int = 8
) -> EquivalenceResult:
    """Equivalence of the associated languages (= finite query equivalence for equal goals)."""
    left_grammar = to_grammar(left)
    right_grammar = to_grammar(right)

    if is_finite_language(left_grammar) and is_finite_language(right_grammar):
        left_words = enumerate_finite_language(left_grammar)
        right_words = enumerate_finite_language(right_grammar)
        if left_words == right_words:
            return EquivalenceResult(EquivalenceVerdict.EQUIVALENT, "finite language comparison")
        witness = sorted(left_words ^ right_words)[0]
        return EquivalenceResult(
            EquivalenceVerdict.NOT_EQUIVALENT, "finite language comparison", witness
        )

    forward = language_containment(left, right, sample_length)
    backward = language_containment(right, left, sample_length)
    if (
        forward.verdict == ContainmentVerdict.CONTAINED
        and backward.verdict == ContainmentVerdict.CONTAINED
    ):
        return EquivalenceResult(
            EquivalenceVerdict.EQUIVALENT, f"{forward.method} / {backward.method}"
        )
    for direction in (forward, backward):
        if direction.verdict == ContainmentVerdict.NOT_CONTAINED:
            return EquivalenceResult(
                EquivalenceVerdict.NOT_EQUIVALENT, direction.method, direction.witness
            )
    agree, witness = language_sample_equal(left_grammar, right_grammar, sample_length)
    if not agree:
        return EquivalenceResult(
            EquivalenceVerdict.NOT_EQUIVALENT,
            f"bounded word comparison up to length {sample_length}",
            witness,
        )
    return EquivalenceResult(
        EquivalenceVerdict.UNKNOWN,
        f"languages agree on all words up to length {sample_length}; exact equivalence undecided",
    )


@dataclass(frozen=True)
class EmpiricalEquivalence:
    """Outcome of comparing two programs' answers on a suite of databases."""

    databases_tested: int
    agree: bool
    counterexample: Optional[Database] = None
    left_answers: Optional[frozenset] = None
    right_answers: Optional[frozenset] = None


def programs_agree_on(
    left: Program, right: Program, databases: List[Database]
) -> EmpiricalEquivalence:
    """Do the two programs produce the same goal answers on every given database?"""
    for index, database in enumerate(databases):
        left_answers = get_engine("seminaive").evaluate(left, database).answers()
        right_answers = get_engine("seminaive").evaluate(right, database).answers()
        if left_answers != right_answers:
            return EmpiricalEquivalence(index + 1, False, database, left_answers, right_answers)
    return EmpiricalEquivalence(len(databases), True)


def random_equivalence_test(
    left: Program,
    right: Program,
    database_factory: Callable[[int], Database],
    trials: int = 20,
) -> EmpiricalEquivalence:
    """Compare answers on ``trials`` databases produced by ``database_factory(seed)``."""
    databases = [database_factory(seed) for seed in range(trials)]
    return programs_agree_on(left, right, databases)
