"""Boundedness and first-order expressibility of chain programs (Proposition 8.2).

Proposition 8.2: for a chain program ``H`` the following are equivalent:

1. the query expressed by ``H`` is first-order expressible over finite
   structures;
2. ``H`` is bounded with respect to its goal (every answer has a derivation
   tree of size at most a constant independent of the database);
3. ``L(H)`` is finite.

Finiteness of a context-free language is decidable, so for chain programs
boundedness is decidable — in contrast to general Datalog, where it is
undecidable (the paper cites [17]).  This module decides the property,
produces the bound and the equivalent first-order formula when it holds, and
offers the empirical derivation-depth check used by experiment E6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.chain import ChainProgram, GoalForm
from repro.core.grammar_map import to_grammar
from repro.datalog.database import Database
from repro.datalog.engine.derivation import DerivationAnalyzer
from repro.datalog.engine.registry import get_engine
from repro.datalog.terms import Constant, Variable
from repro.errors import ValidationError
from repro.languages.alphabet import Word
from repro.languages.cfg_analysis import enumerate_finite_language, is_finite_language
from repro.logic.fo import And, Const, Eq, Exists, Formula, Or, Rel, Var, exists_many


def is_bounded(chain: ChainProgram) -> bool:
    """Decide boundedness w.r.t. the goal: equivalent to finiteness of ``L(H)``."""
    return is_finite_language(to_grammar(chain))


@dataclass(frozen=True)
class BoundednessReport:
    """The outcome of the Proposition 8.2 analysis of one chain program."""

    bounded: bool
    language_words: Optional[Tuple[Word, ...]]
    derivation_size_bound: Optional[int]
    first_order_formula: Optional[Formula]
    output_variables: Tuple[str, ...]

    @property
    def first_order_expressible(self) -> bool:
        """Proposition 8.2's equivalence: bounded iff FO-expressible iff ``L(H)`` finite."""
        return self.bounded


def _word_formula(word: Word, first_term, last_term) -> Formula:
    """The existential FO formula asserting a path labeled *word* from *first* to *last*."""
    atoms: List[Formula] = []
    middles = [Var(f"W{i}") for i in range(1, len(word))]
    previous = first_term
    for index, symbol in enumerate(word):
        target = last_term if index == len(word) - 1 else middles[index]
        atoms.append(Rel(symbol, (previous, target)))
        previous = target
    body: Formula = And(atoms) if len(atoms) > 1 else atoms[0]
    return exists_many([v.name for v in middles], body)


def first_order_query(chain: ChainProgram) -> Tuple[Formula, Tuple[str, ...]]:
    """The first-order formula equivalent to a *bounded* chain program's query.

    Returns ``(formula, output_variables)``; the formula's free variables are
    exactly the output variables (the distinct variables of the goal).
    Raises :class:`ValidationError` when the program is not bounded.
    """
    if chain.goal is None:
        raise ValidationError("the chain program has no goal")
    grammar = to_grammar(chain)
    if not is_finite_language(grammar):
        raise ValidationError("the program is not bounded; no first-order equivalent exists")
    words = sorted(enumerate_finite_language(grammar))
    form = chain.goal_form()
    first, second = chain.goal.terms

    def as_term(term, default_name):
        """Map a goal term to an FO term: constants stay, variables get canonical names."""
        if isinstance(term, Constant):
            return Const(str(term.value))
        return Var(default_name)

    if form in (GoalForm.FREE,):
        first_term, second_term = Var("X"), Var("Y")
        outputs: Tuple[str, ...] = ("X", "Y")
    elif form == GoalForm.EQUAL:
        first_term = second_term = Var("X")
        outputs = ("X",)
    elif form == GoalForm.CONSTANT_FIRST:
        first_term, second_term = as_term(first, "X"), Var("Y")
        outputs = ("Y",)
    elif form == GoalForm.CONSTANT_SECOND:
        first_term, second_term = Var("X"), as_term(second, "Y")
        outputs = ("X",)
    else:  # both constants: boolean query
        first_term, second_term = as_term(first, "X"), as_term(second, "Y")
        outputs = ()

    disjuncts = [_word_formula(word, first_term, second_term) for word in words]
    formula: Formula = Or(disjuncts) if len(disjuncts) != 1 else disjuncts[0]
    return formula, outputs


def analyze_boundedness(chain: ChainProgram) -> BoundednessReport:
    """Full Proposition 8.2 report: boundedness, the derivation-size bound, and the FO form."""
    grammar = to_grammar(chain)
    if not is_finite_language(grammar):
        return BoundednessReport(False, None, None, None, ())
    words = tuple(sorted(enumerate_finite_language(grammar)))
    # A derivation tree for a word w of a chain program has |w| leaves and at most
    # |w| internal nodes per derivation step; the tree size is bounded by 2 * max |w| * depth,
    # but the simple sound bound below (nodes of a binary-branching derivation of the
    # longest word) is enough for reporting purposes.
    longest = max((len(word) for word in words), default=0)
    size_bound = max(1, 2 * longest)
    formula, outputs = first_order_query(chain) if chain.goal is not None else (None, ())
    return BoundednessReport(True, words, size_bound, formula, outputs)


@dataclass(frozen=True)
class DepthMeasurement:
    """Observed maximum minimal-proof height of goal answers on one database."""

    database_size: int
    max_proof_height: int
    iterations: int


def measure_proof_depths(
    chain: ChainProgram, databases: List[Database]
) -> List[DepthMeasurement]:
    """Empirical side of Proposition 8.2: proof heights across growing databases.

    Bounded programs show a constant plateau; unbounded programs (e.g. the
    ancestor program on growing chains) show heights growing with the input.
    """
    measurements = []
    for database in databases:
        analyzer = DerivationAnalyzer(chain.program, database)
        result = get_engine("seminaive").evaluate(chain.program, database)
        measurements.append(
            DepthMeasurement(
                database.fact_count(),
                analyzer.max_goal_proof_height(),
                result.statistics.iterations,
            )
        )
    return measurements
