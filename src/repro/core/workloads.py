"""Synthetic workload generators for the experiments.

The paper evaluates nothing empirically itself, but its motivation rests on
the relative cost of evaluating binary-recursive versus monadic-recursive
programs (the performance study it cites).  These generators produce the
database families the benchmarks run on:

* random *parent forests* for the ancestor programs of Example 1.1;
* labeled random graphs for arbitrary chain programs;
* labeled chains, cycles, and the layered graphs on which the
  ``b1^n b2^n`` program of Section 7 has long witnesses;
* truncations of the inf-model ``IG`` (re-exported from
  :mod:`repro.core.inf_model`).
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.inf_model import ig_truncation  # noqa: F401  (re-export for workload users)
from repro.datalog.database import Database


def parent_forest(
    person_count: int,
    seed: int = 0,
    root: str = "john",
    relation: str = "par",
    branching: int = 3,
    root_count: int = 1,
) -> Database:
    """A random forest of parent edges rooted (in part) at *root*.

    ``par(x, y)`` means "x is a parent of y" (matching Example 1.1, where the
    ancestors of ``john`` are found by following ``par`` edges forward from
    ``john``).  The first tree is rooted at *root* so that the canonical
    query ``?anc(john, Y)`` has a non-trivial answer set.

    With ``root_count > 1`` the forest has several independent trees; only the
    first is rooted at *root*, so the selection ``?anc(john, Y)`` touches a
    fraction of the data — the situation in which selection propagation and
    magic sets prune work.
    """
    rng = random.Random(seed)
    people = [root] + [f"p{i}" for i in range(1, person_count)]
    database = Database()
    # people[0..root_count-1] are tree roots; every later person joins the tree
    # (index mod root_count) and attaches to a random member of that tree,
    # preferring recent members so the trees grow deep rather than flat.
    tree_members = [[people[i]] for i in range(min(root_count, person_count))]
    for index in range(root_count, person_count):
        members = tree_members[index % root_count]
        low = max(0, len(members) - branching * 4)
        parent = members[rng.randint(low, len(members) - 1)]
        database.add_edge(relation, parent, people[index])
        members.append(people[index])
    return database


def chain_database(length: int, relation: str = "par", prefix: str = "n") -> Database:
    """A single path ``n0 -> n1 -> ... -> n_length`` (worst case for ancestor depth)."""
    database = Database()
    for index in range(length):
        database.add_edge(relation, f"{prefix}{index}", f"{prefix}{index + 1}")
    return database


def chain_forest(
    chain_count: int, chain_length: int, relation: str = "par", prefix: str = "r"
) -> Database:
    """Many disjoint short chains: ``r0 -> r0n0 -> ...``, one per root.

    The traffic workload for prepared-query experiments (E10): each root's
    selection ``?anc(rk, Y)`` touches exactly its own chain, so per-query
    engine work stays small and constant while the total EDB grows with
    ``chain_count`` — the regime where rewrite/plan amortization and O(1)
    working-set forks dominate end-to-end latency.
    """
    database = Database()
    facts = []
    for chain in range(chain_count):
        previous = f"{prefix}{chain}"
        for index in range(chain_length):
            node = f"{prefix}{chain}n{index}"
            facts.append((relation, (previous, node)))
            previous = node
    database.add_facts(facts)
    return database


def cycle_database(length: int, relation: str = "b", prefix: str = "c") -> Database:
    """A directed cycle of the given length."""
    database = Database()
    for index in range(length):
        database.add_edge(relation, f"{prefix}{index}", f"{prefix}{(index + 1) % length}")
    return database


def labeled_random_graph(
    node_count: int,
    edge_count: int,
    alphabet: Sequence[str],
    seed: int = 0,
    prefix: str = "v",
) -> Database:
    """A random directed multigraph with edges labeled by the EDB alphabet."""
    rng = random.Random(seed)
    nodes = [f"{prefix}{i}" for i in range(node_count)]
    database = Database()
    for _ in range(edge_count):
        source = rng.choice(nodes)
        target = rng.choice(nodes)
        label = rng.choice(list(alphabet))
        database.add_edge(label, source, target)
    return database


def layered_anbn_graph(
    depth: int,
    first: str = "b1",
    second: str = "b2",
    origin: str = "c",
    noise_branches: int = 0,
    seed: int = 0,
) -> Database:
    """A graph on which the ``b1^n b2^n`` query from *origin* has witnesses for every ``n <= depth``.

    The graph is a ``b1``-labeled spine ``c -> a1 -> ... -> a_depth`` with, from
    every spine node ``a_n``, a ``b2``-labeled descent of length ``n`` back to a
    distinct answer node.  Each *noise branch* is a disconnected copy of the
    same spine-and-descent gadget that is **not reachable from the origin**:
    the un-selected query derives ``p`` facts all over those copies, whereas
    the magic-set / quotient pruning of experiment E5 never touches them.
    """
    del seed  # the structure is deterministic; the parameter is kept for API symmetry
    database = Database()

    def add_gadget(root: str, tag: str) -> None:
        """One spine-and-descent copy; *tag* keeps the copies disjoint."""
        spine = [root] + [f"{tag}a{i}" for i in range(1, depth + 1)]
        for index in range(depth):
            database.add_edge(first, spine[index], spine[index + 1])
        for n in range(1, depth + 1):
            previous = spine[n]
            for step in range(1, n + 1):
                node = f"{tag}d{n}_{step}"
                database.add_edge(second, previous, node)
                previous = node

    add_gadget(origin, "")
    for branch in range(noise_branches):
        add_gadget(f"noise{branch}", f"noise{branch}_")
    return database


def same_generation_database(
    depth: int, branching: int = 2, up: str = "up", down: str = "down", prefix: str = "g"
) -> Database:
    """A balanced tree encoded with ``up`` (child -> parent) and ``down`` (parent -> child) edges.

    The classic same-generation workload: ``sg = up^n down^n`` paths connect
    nodes of equal depth, giving another natural non-regular chain query.
    """
    database = Database()
    current = [f"{prefix}0"]
    identifier = 1
    for _level in range(depth):
        next_level = []
        for parent in current:
            for _ in range(branching):
                child = f"{prefix}{identifier}"
                identifier += 1
                database.add_edge(up, child, parent)
                database.add_edge(down, parent, child)
                next_level.append(child)
        current = next_level
    return database


def database_suite(
    sizes: Iterable[int], factory, **kwargs
) -> List[Database]:
    """Apply a generator to a list of sizes (convenience for scaling experiments)."""
    return [factory(size, **kwargs) for size in sizes]
