"""Exception hierarchy shared by all repro subpackages."""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ParseError(ReproError):
    """Raised when Datalog or regular-expression text cannot be parsed."""

    def __init__(self, message, line=None, column=None):
        location = ""
        if line is not None:
            location = f" (line {line}" + (f", column {column})" if column is not None else ")")
        super().__init__(message + location)
        self.line = line
        self.column = column


class ValidationError(ReproError):
    """Raised when a program, rule, or grammar violates a structural requirement."""


class NotAChainProgramError(ValidationError):
    """Raised when a program presented as a chain program contains a non-chain rule."""


class UnsafeRuleError(ValidationError):
    """Raised when a rule has head variables that do not occur in its body."""


class UnstratifiableProgramError(ValidationError):
    """Raised when a program has a dependency cycle through negation or aggregation.

    Stratified semantics require every negated (or aggregated) body
    predicate to be fully closed before the rules that read it fire; a
    cycle through such an edge makes that impossible.  The message names
    the offending cycle and the edge kind.
    """


class EvaluationError(ReproError):
    """Raised when evaluation of a program over a database fails."""


class LanguageAnalysisError(ReproError):
    """Raised when a language-theoretic analysis cannot be carried out."""


class UndecidableError(LanguageAnalysisError):
    """Raised when an exact answer is requested for a question that is undecidable.

    The library never guesses: procedures that sit on the undecidable
    frontier (CFL regularity, general chain-program equivalence) either
    return a three-valued verdict or raise this error when a definite
    answer is demanded.
    """
