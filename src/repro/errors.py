"""Exception hierarchy shared by all repro subpackages."""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ParseError(ReproError):
    """Raised when Datalog or regular-expression text cannot be parsed."""

    def __init__(self, message, line=None, column=None):
        location = ""
        if line is not None:
            location = f" (line {line}" + (f", column {column})" if column is not None else ")")
        super().__init__(message + location)
        self.line = line
        self.column = column


class ValidationError(ReproError):
    """Raised when a program, rule, or grammar violates a structural requirement."""


class NotAChainProgramError(ValidationError):
    """Raised when a program presented as a chain program contains a non-chain rule."""


class UnsafeRuleError(ValidationError):
    """Raised when a rule has head variables that do not occur in its body."""


class UnstratifiableProgramError(ValidationError):
    """Raised when a program has a dependency cycle through negation or aggregation.

    Stratified semantics require every negated (or aggregated) body
    predicate to be fully closed before the rules that read it fire; a
    cycle through such an edge makes that impossible.  The message names
    the offending cycle and the edge kind.
    """


class EvaluationError(ReproError):
    """Raised when evaluation of a program over a database fails."""


class QueryAborted(EvaluationError):
    """Base class for guardrail aborts: a query stopped at a checkpoint.

    Every subclass is raised *cooperatively* — the evaluation loops check
    their :class:`~repro.datalog.guard.ExecutionGuard` at safe points (round
    boundaries, kernel batches, resolution steps), so an aborted query
    leaves the database, materialized views, and the WAL exactly as they
    were before the request started.
    """


class QueryTimeout(QueryAborted):
    """Raised when a query exceeds its wall-clock deadline.

    The HTTP layer maps this to ``408 Request Timeout``.
    """


class BudgetExceeded(QueryAborted):
    """Raised when a query exceeds its derived-fact or fixpoint-round budget.

    The HTTP layer maps this to ``503 + Retry-After`` — the query is too
    expensive for the resources the server is willing to grant it.
    """


class QueryCancelled(QueryAborted):
    """Raised when a query's :class:`~repro.datalog.guard.CancellationToken`
    was cancelled (e.g. the HTTP client disconnected mid-request)."""


class EngineNotFoundError(ReproError):
    """Raised when the engine registry is asked for an unknown engine name."""


class EngineNotApplicableError(ReproError):
    """Raised when an engine's program rewrite rejects the input program.

    This is the one error class :meth:`QuerySession.compare` treats as "this
    engine simply does not apply here" (e.g. magic sets on a goal without
    constants).  Anything else an engine raises — including an invalid
    *rewritten* program — is a genuine failure and propagates.
    """


class QueryNotRegisteredError(EvaluationError):
    """Raised when a service is asked for a query name it does not know.

    The HTTP layer maps this to ``404 Not Found``.
    """


class ServiceDrainingError(EvaluationError):
    """Raised for writes arriving after :meth:`DatalogService.begin_drain`.

    The HTTP layer maps this to ``503 + Retry-After`` so clients retry
    against the replacement server instead of losing the write silently.
    """


class LanguageAnalysisError(ReproError):
    """Raised when a language-theoretic analysis cannot be carried out."""


class UndecidableError(LanguageAnalysisError):
    """Raised when an exact answer is requested for a question that is undecidable.

    The library never guesses: procedures that sit on the undecidable
    frontier (CFL regularity, general chain-program equivalence) either
    return a three-valued verdict or raise this error when a definite
    answer is demanded.
    """
